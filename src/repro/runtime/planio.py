"""Plan persistence: serialize compiled ExecutionPlans across restarts.

The TASD decomposition of static weights is input-independent, so its cost
should be paid once per *model*, not once per process (SparseRT pays its
specialisation cost ahead of time; S2TA keeps exactly this compressed form
resident).  This module makes the compiled artifact durable: a single
``.npz`` file carrying every layer's :class:`CompressedNM` term arrays,
shapes, series configurations, chosen kernel backend, and autotune
timings, plus a JSON manifest that keys the whole artifact by the content
digests the :class:`OperandCache` already computes (gather tables are
index arithmetic over the stored terms, rederived bit-identically at
load).

Loading rebuilds a fully working :class:`ExecutionPlan` without touching
``tasder`` or ``pruning``: no decomposition, no compression, no
micro-benchmarking — the arrays deserialize straight into
:class:`CompiledOperand` storage (backend state rebuilds lazily on first
dispatch) and re-register in the operand cache under their original
content keys, so a subsequent ``compile_plan`` against the same cache is
all hits.

Integrity is enforced on two axes:

- **artifact integrity** — the manifest carries a checksum of its own
  bytes plus a content digest per stored array; corruption or tampering
  raises :class:`PlanFormatError` instead of loading garbage;
- **model identity** — the manifest records each layer's weight digest and
  a whole-model fingerprint; loading against a model whose weights have
  drifted (retrained, re-pruned, differently seeded) raises
  :class:`PlanDigestError` naming the stale layers.

Usage::

    plan = compile_plan(model, transform, autotune=True)
    plan.save("plan.npz")                      # pay compile+tune once
    ...                                        # process restart
    plan = load_plan("plan.npz", model)        # milliseconds, same plan
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
import zipfile
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.core.patterns import NMPattern
from repro.core.series import TASDConfig
from repro.core.sparse_ops import CompressedNM, nm_gather_tables

from .autotune import AutotuneResult
from .cache import (
    CompiledOperand,
    OperandCache,
    SharedOperandStore,
    tensor_digest,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.nn.module import Module

    from .plan import ExecutionPlan

__all__ = [
    "PLAN_FORMAT",
    "PLAN_FORMAT_VERSION",
    "PlanFormatError",
    "PlanDigestError",
    "model_fingerprint",
    "plan_fingerprint",
    "save_plan",
    "load_plan",
    "share_plan",
    "attach_plan",
]

PLAN_FORMAT = "repro-execution-plan"
PLAN_FORMAT_VERSION = 1

_MANIFEST_KEY = "__manifest__"
_CHECKSUM_KEY = "__checksum__"


class PlanFormatError(ValueError):
    """The artifact is not a readable plan (wrong format, corrupt, tampered)."""


class PlanDigestError(ValueError):
    """The artifact is a valid plan, but for different weights than the model's."""


# ---------------------------------------------------------------------- #
# Digests
# ---------------------------------------------------------------------- #
def _fingerprint_of_digests(layer_digests: dict[str, str]) -> str:
    """Whole-model fingerprint over per-layer weight digests (order-free)."""
    h = hashlib.blake2b(digest_size=20)
    for name in sorted(layer_digests):
        h.update(f"{name}={layer_digests[name]}\n".encode())
    return h.hexdigest()


def model_fingerprint(model: "Module") -> str:
    """Content fingerprint of a model's GEMM-layer weights.

    This is the identity a persisted plan is keyed by: two models with the
    same fingerprint have bit-identical GEMM weights, so a plan compiled
    from one serves the other exactly.
    """
    from repro.pruning.targets import gemm_layers

    digests = {
        name: tensor_digest(layer.weight_matrix())
        for name, layer in gemm_layers(model, include_head=True)
    }
    return _fingerprint_of_digests(digests)


def plan_fingerprint(plan: "ExecutionPlan") -> str:
    """Content fingerprint of the weights a compiled plan was built from.

    Computed over the same per-layer weight digests that guard persisted
    artifacts, so it equals :func:`model_fingerprint` of the source model.
    A hot plan-swap compares the live and candidate plans' fingerprints
    before any worker is touched: equal fingerprints mean the new plan
    serves the *same* weights (a retune / re-layout), and a mismatch is a
    wrong-artifact deploy rejected up front.
    """
    digests = {
        name: _layer_weight_digest(plan, layer_plan)
        for name, layer_plan in plan.layers.items()
    }
    return _fingerprint_of_digests(digests)


def _manifest_checksum(manifest_bytes: bytes) -> str:
    return hashlib.blake2b(manifest_bytes, digest_size=20).hexdigest()


# ---------------------------------------------------------------------- #
# Save
# ---------------------------------------------------------------------- #
def _layer_weight_digest(plan: "ExecutionPlan", layer_plan) -> str:
    """Digest of the weight a layer plan was compiled from.

    ``compile_plan`` records it on the :class:`LayerPlan` directly.  For
    plans built without it, dense / per-call layers hold the dense weight
    (digest recomputable), and compiled layers fall back to the operand's
    content key in the cache — reverse lookup rather than decompressing,
    because the decompressed view is the *approximation*, not the original
    weight.
    """
    if layer_plan.weight_digest is not None:
        return layer_plan.weight_digest
    if layer_plan.dense_weight is not None:
        return tensor_digest(layer_plan.dense_weight)
    digest = plan.cache.digest_of(layer_plan.operand)
    if digest is None:
        raise PlanFormatError(
            f"cannot persist layer {layer_plan.name!r}: it records no "
            f"weight digest and its operand is no longer resident in the "
            f"cache, so the source-weight digest is unrecoverable; "
            f"recompile the plan"
        )
    return digest


def _autotune_entry(sweep: AutotuneResult | None) -> dict | None:
    if sweep is None:
        return None
    return {
        "backend": sweep.backend,
        "timings": dict(sweep.timings),
        "sample_cols": sweep.sample_cols,
    }


def _collect_entries(plan: "ExecutionPlan", put) -> tuple[list[dict], dict[str, str]]:
    """Build the per-layer manifest entries, registering arrays via ``put``.

    ``put(key, array) -> key`` is the storage hook: the disk path records
    digests for later verification, the shared-memory path copies into a
    segment.  Returns (layer entries, per-layer weight digests).
    """
    layer_entries: list[dict] = []
    layer_digests: dict[str, str] = {}
    for i, (name, lp) in enumerate(plan.layers.items()):
        weight_digest = _layer_weight_digest(plan, lp)
        layer_digests[name] = weight_digest
        entry: dict = {
            "name": name,
            "kind": lp.kind,
            "mode": lp.mode,
            "weight_config": str(lp.weight_config),
            "activation_config": str(lp.activation_config),
            "activation_axis": lp.activation_axis,
            "backend": lp.backend,
            "cache_activations": lp.cache is not None,
            "weight_digest": weight_digest,
            "autotune": _autotune_entry(lp.autotune),
        }
        if lp.operand is not None:
            op = lp.operand
            entry["original_shape"] = list(op.original_shape)
            entry["padded_shape"] = list(op.padded_shape)
            entry["terms"] = [
                {
                    "pattern": str(term.pattern),
                    "values": put(f"L{i}.t{t}.values", term.values),
                    "indices": put(f"L{i}.t{t}.indices", term.indices),
                }
                for t, term in enumerate(op.terms)
            ]
        if lp.shards is not None:
            entry["shards"] = lp.shards.to_entry()
        if lp.dense_weight is not None:
            entry["dense_weight"] = put(f"L{i}.dense", lp.dense_weight)
        layer_entries.append(entry)
    return layer_entries, layer_digests


def save_plan(plan: "ExecutionPlan", path: str | Path) -> Path:
    """Serialize ``plan`` to a single ``.npz`` + JSON-manifest artifact.

    The artifact stores, per layer, the :class:`CompressedNM` term arrays
    (``values``/``indices``), the dense weight (dense / per-call layers),
    the padded/original shapes, the series configuration strings, the
    chosen backend, and the autotune sweep that chose it — everything
    :func:`load_plan` needs to rebuild the plan without re-decomposing
    (the gather tables are pure index arithmetic over the stored terms and
    are rederived at load).  Returns the written path.
    """
    path = Path(path)
    arrays: dict[str, np.ndarray] = {}
    array_digests: dict[str, str] = {}

    def put(key: str, a: np.ndarray) -> str:
        arrays[key] = a
        array_digests[key] = tensor_digest(a)
        return key

    layer_entries, layer_digests = _collect_entries(plan, put)

    manifest = {
        "format": PLAN_FORMAT,
        "version": PLAN_FORMAT_VERSION,
        "model_fingerprint": _fingerprint_of_digests(layer_digests),
        "mode": plan.mode,
        "build_time": plan.build_time,
        "layers": layer_entries,
        "array_digests": array_digests,
    }
    manifest_bytes = json.dumps(manifest, sort_keys=True).encode()
    arrays[_MANIFEST_KEY] = np.frombuffer(manifest_bytes, dtype=np.uint8)
    arrays[_CHECKSUM_KEY] = np.frombuffer(
        _manifest_checksum(manifest_bytes).encode(), dtype=np.uint8
    )
    # Atomic replace: a crash or full disk mid-write must never destroy an
    # existing good artifact at this path — that artifact is exactly what a
    # restarted server needs.  The temp name is unique per process *and*
    # thread, so concurrent savers to one path each complete a whole
    # artifact and the last os.replace wins.
    tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}-{threading.get_ident()}")
    try:
        with open(tmp, "wb") as f:
            np.savez_compressed(f, **arrays)
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)
    return path


# ---------------------------------------------------------------------- #
# Load
# ---------------------------------------------------------------------- #
def _read_manifest(data) -> dict:
    if _MANIFEST_KEY not in data or _CHECKSUM_KEY not in data:
        raise PlanFormatError(
            "not a persisted execution plan: missing manifest/checksum entries"
        )
    manifest_bytes = bytes(data[_MANIFEST_KEY])
    stored_checksum = bytes(data[_CHECKSUM_KEY]).decode(errors="replace")
    if _manifest_checksum(manifest_bytes) != stored_checksum:
        raise PlanFormatError(
            "plan manifest checksum mismatch: the artifact was modified or corrupted"
        )
    try:
        manifest = json.loads(manifest_bytes.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise PlanFormatError(f"plan manifest is not valid JSON: {exc}") from None
    if manifest.get("format") != PLAN_FORMAT:
        raise PlanFormatError(
            f"not a persisted execution plan (format={manifest.get('format')!r})"
        )
    if manifest.get("version") != PLAN_FORMAT_VERSION:
        raise PlanFormatError(
            f"unsupported plan format version {manifest.get('version')!r}; "
            f"this runtime reads version {PLAN_FORMAT_VERSION}"
        )
    return manifest


def _array(data, manifest: dict, key: str) -> np.ndarray:
    if key not in data:
        raise PlanFormatError(f"plan artifact is missing array {key!r}")
    a = data[key]
    expected = manifest["array_digests"].get(key)
    if expected is None:
        raise PlanFormatError(f"plan manifest lacks a digest for array {key!r}")
    if tensor_digest(a) != expected:
        raise PlanFormatError(
            f"plan array {key!r} digest mismatch: the artifact was modified "
            f"or corrupted"
        )
    return a


def _verify_model(manifest: dict, model: "Module") -> None:
    from repro.pruning.targets import gemm_layers

    layers = dict(gemm_layers(model, include_head=True))
    missing = [e["name"] for e in manifest["layers"] if e["name"] not in layers]
    if missing:
        raise PlanDigestError(
            f"plan names GEMM layers the model lacks: {sorted(missing)}"
        )
    # One digest pass over the model's full GEMM set serves both checks —
    # full-weight hashing dominates warm-restart cost, so never pay it twice.
    current = {
        name: tensor_digest(layer.weight_matrix()) for name, layer in layers.items()
    }
    stale = [
        e["name"] for e in manifest["layers"] if current[e["name"]] != e["weight_digest"]
    ]
    if stale:
        raise PlanDigestError(
            f"plan was compiled for different weights: digest mismatch on "
            f"{len(stale)}/{len(manifest['layers'])} layers "
            f"({', '.join(sorted(stale)[:5])}{', ...' if len(stale) > 5 else ''}); "
            f"recompile the plan for this model"
        )
    # The fingerprint spans the model's *full* GEMM layer set, so it also
    # catches layers the plan has never heard of: a model that gained a
    # GEMM layer since the save would otherwise load fine and serve that
    # layer silently unplanned.
    if _fingerprint_of_digests(current) != manifest["model_fingerprint"]:
        extra = sorted(set(layers) - {e["name"] for e in manifest["layers"]})
        raise PlanDigestError(
            f"plan was compiled for a model without GEMM layers "
            f"{extra or '(unknown)'}; recompile the plan for this model"
        )


def _rebuild_operand(data, manifest: dict, entry: dict, config: TASDConfig) -> CompiledOperand:
    padded_shape = tuple(entry["padded_shape"])
    terms = []
    flat_values = []
    flat_rows = []
    for term_entry in entry["terms"]:
        term = CompressedNM(
            pattern=NMPattern.parse(term_entry["pattern"]),
            values=_array(data, manifest, term_entry["values"]),
            indices=_array(data, manifest, term_entry["indices"]),
            shape=padded_shape,
        )
        terms.append(term)
        # Gather tables are pure index arithmetic over the compressed term
        # (the same derivation compile time uses) — rederive them instead
        # of persisting, digesting, and verifying derived data.
        vals, rows = nm_gather_tables(term)
        flat_values.append(vals)
        flat_rows.append(rows)
    return CompiledOperand(
        config=config,
        original_shape=tuple(entry["original_shape"]),
        padded_shape=padded_shape,
        terms=tuple(terms),
        flat_values=tuple(flat_values),
        flat_rows=tuple(flat_rows),
    )


def load_plan(
    path: str | Path,
    model: "Module",
    cache: OperandCache | None = None,
) -> "ExecutionPlan":
    """Deserialize a plan saved by :func:`save_plan` back into a working one.

    Verifies artifact integrity (manifest checksum + per-array digests) and
    model identity (per-layer weight digests + whole-model fingerprint)
    before rebuilding anything: a stale or tampered artifact raises
    :class:`PlanDigestError` / :class:`PlanFormatError` instead of serving
    wrong results.  Rebuilt operands are re-registered in ``cache`` under
    their original content keys (so recompiles hit), and per-backend
    prepared state rebuilds lazily on first dispatch — load time is file
    I/O plus digest checks, never decomposition or tuning.
    """
    t0 = time.perf_counter()
    path = Path(path)
    cache = cache if cache is not None else OperandCache()
    try:
        data = np.load(path, allow_pickle=False)
    except FileNotFoundError:
        raise  # a missing path is the caller's error, not a bad artifact
    except (zipfile.BadZipFile, ValueError, OSError) as exc:
        # Truncated zip, arbitrary bytes, numpy's "pickled data" refusal, ...
        raise PlanFormatError(
            f"cannot read plan artifact {path}: {exc}"
        ) from None
    with data:
        manifest = _read_manifest(data)
        try:
            plan = _rebuild_plan(data, manifest, model, cache)
        except (PlanFormatError, PlanDigestError):
            raise
        except (KeyError, IndexError, TypeError, ValueError) as exc:
            # A forged manifest (checksum recomputed) with missing or
            # mistyped keys must still refuse cleanly, not crash raw.
            raise PlanFormatError(
                f"plan manifest is malformed ({type(exc).__name__}: {exc}); "
                f"the artifact was modified or written incompatibly"
            ) from None
    plan.build_time = time.perf_counter() - t0
    return plan


def _entry_configs(entry: dict) -> tuple[TASDConfig, TASDConfig]:
    """Parsed (weight, activation) configs with mode/backend validation.

    Raised problems surface as :class:`PlanFormatError` before
    ``LayerPlan.__post_init__`` turns them into raw KeyErrors.
    """
    from .backends import backend_names
    from .plan import MODES

    name = entry["name"]
    if entry["mode"] not in MODES:
        raise PlanFormatError(
            f"plan layer {name!r} has unknown mode {entry['mode']!r}; "
            f"options: {MODES}"
        )
    if entry["mode"] == "compiled" and entry["backend"] not in backend_names():
        raise PlanFormatError(
            f"plan layer {name!r} uses GEMM backend {entry['backend']!r}, "
            f"which is not registered in this process (registered: "
            f"{backend_names()}); register it before loading, or "
            f"recompile the plan"
        )
    return (
        TASDConfig.parse(entry["weight_config"]),
        TASDConfig.parse(entry["activation_config"]),
    )


def _entry_shards(entry: dict, operand: CompiledOperand | None):
    """Rebuild and re-validate a layer's shard table from its manifest entry.

    The table's tiling invariant, row count, and per-shard nnz budgets are
    all re-checked against the *stored operand* — a table that drifted
    (recompressed weights, edited manifest) would silently misroute shard
    work, so any mismatch is a typed :class:`PlanFormatError`.
    """
    raw = entry.get("shards")
    if raw is None:
        return None
    from .shard import ShardSpec, row_nnz_profile

    name = entry["name"]
    if operand is None:
        raise PlanFormatError(
            f"plan layer {name!r} carries a shard table but no compiled "
            f"operand to shard; the artifact was modified or written "
            f"incompatibly"
        )
    try:
        spec = ShardSpec.from_entry(name, raw)
    except (KeyError, TypeError, ValueError) as exc:
        raise PlanFormatError(
            f"plan layer {name!r} shard table is invalid ({exc}); the "
            f"artifact drifted or was tampered with — recompile the plan"
        ) from None
    if spec.rows != operand.padded_shape[0]:
        raise PlanFormatError(
            f"plan layer {name!r} shard table covers {spec.rows} rows but "
            f"the stored operand has {operand.padded_shape[0]}; the table is "
            f"stale — recompile the plan"
        )
    profile = row_nnz_profile(operand)
    actual = tuple(int(profile[a:b].sum()) for a, b in spec.ranges)
    if actual != spec.nnz:
        raise PlanFormatError(
            f"plan layer {name!r} shard table nnz budgets do not match the "
            f"stored operand (stale or tampered shard table); recompile the "
            f"plan"
        )
    return spec


def _entry_layer_plan(
    entry: dict,
    weight_config: TASDConfig,
    activation_config: TASDConfig,
    operand: CompiledOperand | None,
    dense_weight: np.ndarray | None,
    cache: OperandCache,
):
    from .plan import LayerPlan

    sweep = entry["autotune"]
    return LayerPlan(
        name=entry["name"],
        kind=entry["kind"],
        mode=entry["mode"],
        weight_config=weight_config,
        activation_config=activation_config,
        activation_axis=entry["activation_axis"],
        operand=operand,
        dense_weight=dense_weight,
        cache=cache if entry["cache_activations"] else None,
        backend=entry["backend"],
        autotune=None
        if sweep is None
        else AutotuneResult(
            backend=sweep["backend"],
            timings=dict(sweep["timings"]),
            sample_cols=sweep["sample_cols"],
        ),
        weight_digest=entry["weight_digest"],
        shards=_entry_shards(entry, operand),
    )


def _assemble_plan(layers, weight_configs, activation_configs, cache, mode):
    from repro.tasder.transform import TASDTransform

    from .plan import ExecutionPlan

    return ExecutionPlan(
        layers=layers,
        transform=TASDTransform(
            weight_configs=weight_configs, activation_configs=activation_configs
        ),
        cache=cache,
        mode=mode,
        build_time=0.0,
    )


def _rebuild_plan(data, manifest: dict, model: "Module", cache: OperandCache):
    """Rebuild the ExecutionPlan a verified manifest describes.

    ``build_time`` is stamped by the caller (it covers the whole load).
    """
    _verify_model(manifest, model)
    layers: dict = {}
    weight_configs: dict[str, TASDConfig] = {}
    activation_configs: dict[str, TASDConfig] = {}
    for entry in manifest["layers"]:
        name = entry["name"]
        weight_config, activation_config = _entry_configs(entry)
        if not weight_config.is_dense:
            weight_configs[name] = weight_config
        if not activation_config.is_dense:
            activation_configs[name] = activation_config
        operand = dense_weight = None
        if "terms" in entry:
            operand = _rebuild_operand(data, manifest, entry, weight_config)
            # adopt() returns the incumbent when the cache already holds
            # this weight's operand — keep that one, so plans sharing the
            # cache share operands by identity.
            operand = cache.adopt(entry["weight_digest"], weight_config, operand)
        if "dense_weight" in entry:
            dense_weight = _array(data, manifest, entry["dense_weight"])
        layers[name] = _entry_layer_plan(
            entry, weight_config, activation_config, operand, dense_weight, cache
        )
    return _assemble_plan(layers, weight_configs, activation_configs, cache, manifest["mode"])


# ---------------------------------------------------------------------- #
# Cross-process sharing (the worker-pool attach path)
# ---------------------------------------------------------------------- #
def share_plan(plan: "ExecutionPlan") -> tuple[SharedOperandStore | None, dict]:
    """Export ``plan`` for zero-copy attachment by worker processes.

    Packs every array behind the plan — :class:`CompressedNM` term
    ``values``/``indices``, the flattened gather-row tables, and dense
    weights — into one shared-memory segment, and returns ``(store,
    spec)``: the store owns the segment (call :meth:`unlink` once the
    workers are gone), the spec is a small picklable dict carrying the
    segment name, per-array refs, and the same per-layer metadata the
    persisted-plan manifest records.  :func:`attach_plan` turns the spec
    back into a working plan in any process.

    Where POSIX shared memory is unavailable the spec degrades to carrying
    the arrays inline (``store`` is ``None``): every worker then holds a
    private copy — slower to ship, but functionally identical.
    """
    arrays: dict[str, np.ndarray] = {}

    def put(key: str, a: np.ndarray) -> str:
        arrays[key] = a
        return key

    layer_entries, _ = _collect_entries(plan, put)
    # Gather-row tables ride in the segment too: they are index arithmetic
    # over the terms, but rederiving them would cost every worker a private
    # allocation as large as the indices themselves.  (The flat *value*
    # tables need no storage at all — they are reshapes of the term values,
    # so the attached views share the same segment bytes.)
    for i, (name, lp) in enumerate(plan.layers.items()):
        if lp.operand is not None:
            layer_entries[i]["flat_rows"] = [
                put(f"L{i}.t{t}.flat_rows", rows)
                for t, rows in enumerate(lp.operand.flat_rows)
            ]
    spec = {
        "mode": plan.mode,
        "layers": layer_entries,
        "segment": None,
        "refs": None,
        "inline": None,
    }
    try:
        store, refs = SharedOperandStore.create(arrays)
    except OSError:
        spec["inline"] = {key: np.ascontiguousarray(a) for key, a in arrays.items()}
        return None, spec
    spec["segment"] = store.name
    spec["refs"] = refs
    return store, spec


def _attached_operand(entry: dict, config: TASDConfig, get) -> CompiledOperand:
    padded_shape = tuple(entry["padded_shape"])
    rows = padded_shape[0]
    terms = []
    flat_values = []
    flat_rows = []
    for term_entry, rows_key in zip(entry["terms"], entry["flat_rows"]):
        term = CompressedNM(
            pattern=NMPattern.parse(term_entry["pattern"]),
            values=get(term_entry["values"]),
            indices=get(term_entry["indices"]),
            shape=padded_shape,
        )
        terms.append(term)
        flat_values.append(term.values.reshape(rows, -1))
        flat_rows.append(get(rows_key))
    return CompiledOperand(
        config=config,
        original_shape=tuple(entry["original_shape"]),
        padded_shape=padded_shape,
        terms=tuple(terms),
        flat_values=tuple(flat_values),
        flat_rows=tuple(flat_rows),
    )


def attach_plan(
    spec: dict, cache: OperandCache | None = None
) -> tuple["ExecutionPlan", SharedOperandStore | None]:
    """Rebuild a working plan from a :func:`share_plan` spec (worker side).

    Returns ``(plan, store)``.  With a shared segment, every array in the
    plan is a zero-copy read-only view into it — the worker must keep
    ``store`` open for the plan's lifetime and ``close()`` (never
    ``unlink()``) it on exit; the creating process owns the segment.  No
    digest verification happens here: the spec is an in-memory handoff
    from the process that built the plan, not an untrusted artifact —
    integrity-checked persistence is :func:`load_plan`'s job.

    Operands are adopted into ``cache`` under their source-weight digests,
    so a worker-side ``compile_plan`` against the same cache would hit.
    """
    cache = cache if cache is not None else OperandCache()
    store = None
    if spec["segment"] is not None:
        store = SharedOperandStore.attach(spec["segment"])
        refs = spec["refs"]

        def get(key: str) -> np.ndarray:
            return store.get(refs[key])

    else:
        inline = spec["inline"]

        def get(key: str) -> np.ndarray:
            return inline[key]

    layers: dict = {}
    weight_configs: dict[str, TASDConfig] = {}
    activation_configs: dict[str, TASDConfig] = {}
    for entry in spec["layers"]:
        name = entry["name"]
        weight_config, activation_config = _entry_configs(entry)
        if not weight_config.is_dense:
            weight_configs[name] = weight_config
        if not activation_config.is_dense:
            activation_configs[name] = activation_config
        operand = dense_weight = None
        if "terms" in entry:
            operand = _attached_operand(entry, weight_config, get)
            operand = cache.adopt(entry["weight_digest"], weight_config, operand)
        if "dense_weight" in entry:
            dense_weight = get(entry["dense_weight"])
        layers[name] = _entry_layer_plan(
            entry, weight_config, activation_config, operand, dense_weight, cache
        )
    plan = _assemble_plan(layers, weight_configs, activation_configs, cache, spec["mode"])
    return plan, store
