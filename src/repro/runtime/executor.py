"""Batched plan executor: runs compiled plans over input batches.

The executor owns the model ↔ plan binding: entering it installs the plan
on the model's GEMM layers (their eval-mode forward then consumes the
:class:`LayerPlan` instead of re-decomposing), running it times whole
forwards and accumulates per-layer perf counters, and closing it restores
the uncompiled model.  One lock serialises execution, so the serving
engine's worker threads can share an executor safely — at the cost of
serialising their forwards.

This is the degenerate, single-worker case of the
:class:`repro.runtime.pool.WorkerPool` seam (it honours the same
``install`` / ``run`` / ``stats`` contract and registers as a virtual
subclass).  When worker throughput should scale instead, use a real pool:
:class:`~repro.runtime.pool.ThreadWorkerPool` runs each worker against
its own model replica sharing this same compiled plan, and
:class:`~repro.runtime.pool.ProcessWorkerPool` runs worker processes over
shared-memory operands, past the GIL.
"""

from __future__ import annotations

import dataclasses
import threading
import time

import numpy as np

from repro.nn.module import Module

from .counters import ExecutorStats, WorkerStat
from .plan import ExecutionPlan

__all__ = ["PlanExecutor"]


class PlanExecutor:
    """Execute batches against a compiled plan, collecting perf counters.

    Usage::

        plan = compile_plan(model, transform)
        with PlanExecutor(model, plan) as ex:
            y = ex.run(batch)
            print(ex.stats().table())
    """

    def __init__(self, model: Module, plan: ExecutionPlan) -> None:
        self.model = model
        self.plan = plan
        self._lock = threading.Lock()
        self._installed = False
        self._batches = 0
        self._samples = 0
        self._wall_time = 0.0

    # ------------------------------------------------------------------ #
    def install(self) -> "PlanExecutor":
        with self._lock:
            if not self._installed:
                self.plan.install(self.model)
                self.model.eval()
                self._installed = True
        return self

    def close(self) -> None:
        with self._lock:
            if self._installed:
                self.plan.uninstall(self.model)
                self._installed = False

    def __enter__(self) -> "PlanExecutor":
        return self.install()

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    def run(self, x: np.ndarray) -> np.ndarray:
        """One timed forward of the plan-installed model over a batch."""
        x = np.asarray(x)
        with self._lock:
            if not self._installed:
                self.plan.install(self.model)
                self.model.eval()
                self._installed = True
            t0 = time.perf_counter()
            y = self.model(x)
            self._wall_time += time.perf_counter() - t0
            self._batches += 1
            self._samples += int(x.shape[0])
        return y

    def run_many(self, batches) -> list[np.ndarray]:
        """Run a sequence of batches, returning their outputs in order."""
        return [self.run(x) for x in batches]

    # ------------------------------------------------------------------ #
    def utilization(self) -> float:
        """1.0 while a forward holds the lock, else 0.0 (autoscaler signal)."""
        return 1.0 if self._lock.locked() else 0.0

    def swap_plan(self, new_plan: ExecutionPlan, canary=None) -> int:
        """Hot-swap the compiled plan on this single-worker executor.

        The degenerate pool has no spare worker to validate on, so the
        new plan is installed first and ``canary(run_fn)`` — when given —
        validates it *after* the cutover; the canary raising anything
        reinstalls the old plan and re-raises.  (Live traffic can hit the
        unvalidated plan during that brief window; real pools canary on
        an isolated worker instead.)  Returns 1, the worker count.
        """
        old_plan = self.plan
        with self._lock:
            new_plan.install(self.model)
            self.model.eval()
            self.plan = new_plan
            self._installed = True
        if canary is not None:
            try:
                canary(self.run)
            except BaseException:
                with self._lock:
                    old_plan.install(self.model)
                    self.model.eval()
                    self.plan = old_plan
                raise
        return 1

    # ------------------------------------------------------------------ #
    def stats(self) -> ExecutorStats:
        """Snapshot of per-layer counters plus whole-forward timing.

        Counters are copied under the execution lock, so the snapshot is
        internally consistent (no mid-forward tearing) and stays valid
        across later forwards and :meth:`reset_stats` calls.
        """
        with self._lock:
            return ExecutorStats(
                batches=self._batches,
                samples=self._samples,
                wall_time=self._wall_time,
                layers={
                    name: plan.counters.snapshot()
                    for name, plan in self.plan.layers.items()
                },
                cache=dataclasses.replace(self.plan.cache.counters),
            )

    def worker_stats(self) -> list[WorkerStat]:
        """The degenerate pool's one worker: alive while installed."""
        with self._lock:
            return [WorkerStat(uid=0, alive=self._installed, requests=self._batches)]

    def reset_stats(self) -> None:
        with self._lock:
            self._batches = self._samples = 0
            self._wall_time = 0.0
            self.plan.reset_counters()
            self.plan.cache.counters.reset()
