"""Serving engine: request queue, micro-batching, worker loop.

Requests are single inputs (or small batches) submitted from any thread.
Workers coalesce up to ``max_batch`` queued requests within a
``batch_window`` seconds time window into one micro-batch, run it through
the shared executor, split the outputs back per request, and resolve each
request's future with its result and latency stats.

The engine talks only to the :class:`~repro.runtime.pool.WorkerPool` seam
(``install`` / ``run`` / ``stats``) and never cares what substrate sits
behind it: a :class:`PlanExecutor` serialises worker forwards on its
lock, a :class:`~repro.runtime.pool.ThreadWorkerPool` runs up to
``workers`` forwards concurrently on per-thread model replicas, and a
:class:`~repro.runtime.pool.ProcessWorkerPool` runs them in worker
processes attached to shared-memory operands — no GIL in common.

Micro-batching preserves results exactly: the model is batch-linear (every
layer treats the leading axis as independent samples), so serving a request
inside a micro-batch returns the same values as serving it alone.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass

import numpy as np

from .counters import RequestStats, ServeReport
from .pool import WorkerPool

__all__ = ["ServingEngine"]


@dataclass
class _Request:
    request_id: int
    x: np.ndarray
    future: Future
    submitted_at: float


class ServingEngine:
    """Micro-batching inference server over a compiled execution plan.

    Parameters
    ----------
    executor : WorkerPool
        Shared execution substrate (anything honouring the
        :class:`~repro.runtime.pool.WorkerPool` contract).  A
        :class:`PlanExecutor`'s internal lock serialises model forwards
        (workers overlap only queueing and splitting); a thread or
        process pool runs workers' forwards concurrently.
    max_batch : int
        Maximum requests coalesced into one micro-batch.
    batch_window : float
        Seconds a worker waits for additional requests after the first.
    workers : int
        Worker threads draining the queue.  Pair ``workers=N`` with a
        pool of ``N`` workers (``make_pool(..., workers=N)``) to scale
        throughput.
    """

    def __init__(
        self,
        executor: WorkerPool,
        max_batch: int = 8,
        batch_window: float = 0.002,
        workers: int = 1,
    ) -> None:
        if max_batch <= 0:
            raise ValueError(f"max_batch must be positive, got {max_batch}")
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        self.executor = executor
        self.max_batch = max_batch
        self.batch_window = batch_window
        self.workers = workers
        self._queue: "queue.Queue[_Request | None]" = queue.Queue()
        self._threads: list[threading.Thread] = []
        self._ids = itertools.count()
        self._running = False
        # Makes {check _running, enqueue} atomic against stop()'s flip, so a
        # submit racing a concurrent stop() either lands before the shutdown
        # sentinels (and is served) or raises — never a stranded future.
        self._state_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._request_stats: list[RequestStats] = []
        self._started_at = 0.0
        self._stopped_at = 0.0

    # ------------------------------------------------------------------ #
    def start(self) -> "ServingEngine":
        with self._state_lock:
            if self._running:
                return self
            self.executor.install()
            # Fresh run, fresh telemetry: a restart must not mix the previous
            # run's requests or wall-time window into the next report().  The
            # previous report stays readable between stop() and the restart,
            # and the reset happens under the state lock so a report() racing
            # the restart sees either the old window or the new one — never a
            # half-reset mix.
            with self._stats_lock:
                self._request_stats.clear()
            self._stopped_at = 0.0
            self._started_at = time.perf_counter()
            self._running = True
        for i in range(self.workers):
            t = threading.Thread(target=self._worker_loop, name=f"serve-worker-{i}", daemon=True)
            t.start()
            self._threads.append(t)
        return self

    def stop(self) -> None:
        with self._state_lock:
            if not self._running:
                return
            self._running = False
        for _ in self._threads:
            self._queue.put(None)  # one sentinel per worker
        for t in self._threads:
            t.join()
        self._threads.clear()
        # Safety net: a request submitted concurrently with stop() may still
        # sit behind the sentinels.  Serve leftovers synchronously so no
        # future is ever stranded.
        while True:
            try:
                leftover = self._queue.get_nowait()
            except queue.Empty:
                break
            if leftover is not None:
                self._execute_batch([leftover])
        with self._state_lock:
            self._stopped_at = time.perf_counter()

    def __enter__(self) -> "ServingEngine":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    def submit(self, x: np.ndarray) -> Future:
        """Enqueue one request; the future resolves to its output batch."""
        x = np.asarray(x)
        if x.ndim < 1 or x.shape[0] < 1:
            raise ValueError(f"request input needs a leading batch axis, got shape {x.shape}")
        request = _Request(next(self._ids), x, Future(), time.perf_counter())
        with self._state_lock:
            if not self._running:
                raise RuntimeError("serving engine is not running; call start() first")
            self._queue.put(request)
        return request.future

    def infer(self, x: np.ndarray, timeout: float | None = None) -> np.ndarray:
        """Synchronous convenience wrapper around :meth:`submit`."""
        return self.submit(x).result(timeout=timeout)

    # ------------------------------------------------------------------ #
    def _gather_batch(self, first: _Request) -> tuple[list[_Request], "_Request | None"]:
        """Coalesce compatible requests behind ``first`` within the window.

        Returns the batch plus an optional *carry*: a request whose sample
        shape did not match the batch.  The carry stays with this worker (it
        opens the next batch) rather than being requeued — requeueing could
        land it behind a shutdown sentinel and strand its future forever.
        """
        batch = [first]
        carry: _Request | None = None
        deadline = time.perf_counter() + self.batch_window
        while len(batch) < self.max_batch:
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                break
            try:
                req = self._queue.get(timeout=remaining)
            except queue.Empty:
                break
            if req is None:  # shutdown sentinel: hand it to another worker
                self._queue.put(None)
                break
            if req.x.shape[1:] != first.x.shape[1:] or req.x.dtype != first.x.dtype:
                # Mismatched sample shape or dtype: concatenating would
                # reshape/upcast and change the request's exact result.
                carry = req
                break
            batch.append(req)
        return batch, carry

    def _worker_loop(self) -> None:
        carry: _Request | None = None
        while True:
            if carry is not None:
                first, carry = carry, None
            else:
                try:
                    first = self._queue.get(timeout=0.05)
                except queue.Empty:
                    if not self._running:
                        return
                    continue
                if first is None:
                    return
            batch, carry = self._gather_batch(first)
            self._execute_batch(batch)

    def _execute_batch(self, batch: list[_Request]) -> None:
        dispatched_at = time.perf_counter()
        sizes = [req.x.shape[0] for req in batch]
        inputs = np.concatenate([req.x for req in batch], axis=0) if len(batch) > 1 else batch[0].x
        try:
            outputs = self.executor.run(inputs)
        except Exception as exc:  # pragma: no cover - defensive
            for req in batch:
                req.future.set_exception(exc)
            return
        done_at = time.perf_counter()
        compute_time = done_at - dispatched_at
        offsets = np.cumsum([0] + sizes)
        for req, lo, hi in zip(batch, offsets[:-1], offsets[1:]):
            result = outputs[lo:hi]
            stats = RequestStats(
                request_id=req.request_id,
                batch_size=len(batch),
                samples=req.x.shape[0],
                queue_time=dispatched_at - req.submitted_at,
                compute_time=compute_time,
                latency=done_at - req.submitted_at,
            )
            with self._stats_lock:
                self._request_stats.append(stats)
            req.future.set_result(result)

    # ------------------------------------------------------------------ #
    def report(self) -> ServeReport:
        """Latency/throughput report over everything served so far."""
        with self._state_lock:
            started, stopped = self._started_at, self._stopped_at
        end = stopped if stopped > started else time.perf_counter()
        with self._stats_lock:
            requests = list(self._request_stats)
        wall = max(0.0, end - started) if started else 0.0
        return ServeReport(requests=requests, wall_time=wall)
