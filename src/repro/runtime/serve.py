"""Serving engine: request queue, micro-batching, worker loop, telemetry.

Requests are single inputs (or small batches) submitted from any thread.
Workers coalesce up to ``max_batch`` queued requests within a
``batch_window`` seconds time window into one micro-batch, run it through
the shared executor, split the outputs back per request, and resolve each
request's future with its result and latency stats.

The engine talks only to the :class:`~repro.runtime.pool.WorkerPool` seam
(``install`` / ``run`` / ``stats``) and never cares what substrate sits
behind it: a :class:`PlanExecutor` serialises worker forwards on its
lock, a :class:`~repro.runtime.pool.ThreadWorkerPool` runs up to
``workers`` forwards concurrently on per-thread model replicas, and a
:class:`~repro.runtime.pool.ProcessWorkerPool` runs them in worker
processes attached to shared-memory operands — no GIL in common.

Micro-batching preserves results exactly: the model is batch-linear (every
layer treats the leading axis as independent samples), so serving a request
inside a micro-batch returns the same values as serving it alone.

The engine is *fault-tolerant*: a micro-batch whose pool worker dies
mid-request is transparently retried (bounded attempts, then split in
half to isolate a poison request from its batchmates), per-request
deadlines drop expired work before dispatch (:class:`DeadlineExceeded`),
``max_queue`` sheds load at the door (:class:`QueueFull`), and a process
pool that collapses past its crash-loop circuit breaker degrades the
engine onto an in-process :class:`PlanExecutor` fallback — slower, never
down — with ``/healthz`` reporting ``degraded`` (200) vs ``dead`` (503).

The engine is *observable while running* (the telemetry spine):

- every request feeds latency / queue-wait / batch-size / window-occupancy
  histograms in a :class:`~repro.runtime.metrics.MetricsRegistry` and
  leaves a span trace (``enqueue → batch_form → execute → reply``) in a
  bounded ring buffer (:meth:`traces`);
- :meth:`metrics_snapshot` assembles one scrape from the engine's own
  registry plus scrape-time views of the pool (per-layer GEMM histograms
  merged across every worker, cache counters, per-worker liveness);
- :meth:`serve_metrics` exposes it all over HTTP — ``/metrics``
  (Prometheus text), ``/metrics.json``, ``/healthz``, ``/statusz`` — from
  a background thread, stdlib only.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as _FutureTimeout  # builtin alias on 3.11+
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.analysis.annotations import hot_path

from .counters import RequestStats, ServeReport, WorkerStat
from .executor import PlanExecutor
from .metrics import (
    BATCH_SIZE_BUCKETS,
    OCCUPANCY_BUCKETS,
    MetricsRegistry,
    MetricsServer,
    export_executor_stats,
    merge_snapshots,
)
from .pool import PlanSwapError, PoolDegradedError, WorkerCrashError, WorkerPool
from .tracing import RequestTrace, TraceBuffer

__all__ = ["DeadlineExceeded", "EngineStopped", "QueueFull", "SwapRejected", "ServingEngine"]


class EngineStopped(RuntimeError):
    """The engine is not running: :meth:`ServingEngine.submit` was called
    before :meth:`ServingEngine.start` or after :meth:`ServingEngine.stop`.
    Subclasses :class:`RuntimeError` so pre-existing ``except RuntimeError``
    callers keep working."""


class QueueFull(RuntimeError):
    """Admission control rejected a submit: the request queue is at its
    ``max_queue`` bound (or the engine is draining).  Shedding load at the
    door beats queueing work the server cannot finish inside any useful
    latency budget."""


class DeadlineExceeded(TimeoutError):
    """The request's deadline expired before it was dispatched; it was
    dropped without being computed."""


class SwapRejected(RuntimeError):
    """A hot plan-swap was rejected (and rolled back if it had begun).

    ``reason`` carries the verdict: a wrong-weights artifact, a canary
    whose outputs diverge from the live plan, a canary error/latency
    guard, a worker that failed to attach, or a failed post-swap check.
    The engine keeps serving the *old* plan in every case.
    """

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


@dataclass
class _Request:
    request_id: int
    x: np.ndarray
    future: Future
    submitted_at: float
    collected_at: float = field(default=0.0)  # when a worker pulled it off the queue
    deadline_at: float = field(default=0.0)  # perf_counter bound; 0.0 = none
    attempts: int = field(default=0)  # dispatch attempts (retries show > 1)
    shard: bool = field(default=False)  # latency mode: scatter layers across workers


class ServingEngine:
    """Micro-batching inference server over a compiled execution plan.

    Parameters
    ----------
    executor : WorkerPool
        Shared execution substrate (anything honouring the
        :class:`~repro.runtime.pool.WorkerPool` contract).  A
        :class:`PlanExecutor`'s internal lock serialises model forwards
        (workers overlap only queueing and splitting); a thread or
        process pool runs workers' forwards concurrently.
    max_batch : int
        Maximum requests coalesced into one micro-batch.
    batch_window : float
        Seconds a worker waits for additional requests after the first.
    workers : int
        Worker threads draining the queue.  Pair ``workers=N`` with a
        pool of ``N`` workers (``make_pool(..., workers=N)``) to scale
        throughput.
    metrics : MetricsRegistry | bool
        ``True`` (default) creates a fresh registry; pass an existing
        registry to share one across engines, or ``False``/``None`` to
        disable hot-path metric recording entirely (the scrape-time pool
        views in :meth:`metrics_snapshot` still work).
    trace_capacity : int
        Ring-buffer bound for per-request span traces (:meth:`traces`).
    max_queue : int | None
        Admission bound: :meth:`submit` raises :class:`QueueFull` once
        this many requests are waiting (``None`` = unbounded, the old
        behaviour).  Shedding at the door keeps queue wait bounded.
    max_retries : int
        Retries per micro-batch when the pool loses the worker serving
        it (:class:`~repro.runtime.pool.WorkerCrashError`).  After the
        budget is spent a multi-request batch is split in half — each
        half with a fresh budget — so one poison input cannot sink its
        batchmates; a single request that still crashes workers fails
        with the crash error (it is *not* run in-process, where it could
        take the server down with it).
    fallback : str
        ``"auto"`` (default) builds an in-process
        :class:`~repro.runtime.executor.PlanExecutor` over the pool's
        model/plan the first time the pool collapses past its circuit
        breaker (:class:`~repro.runtime.pool.PoolDegradedError`) and
        serves through it — slower, never down.  ``"none"`` disables
        the fallback; a collapsed pool then fails requests.
    """

    def __init__(
        self,
        executor: WorkerPool,
        max_batch: int = 8,
        batch_window: float = 0.002,
        workers: int = 1,
        metrics: "MetricsRegistry | bool | None" = True,
        trace_capacity: int = 256,
        max_queue: int | None = None,
        max_retries: int = 2,
        fallback: str = "auto",
    ) -> None:
        if max_batch <= 0:
            raise ValueError(f"max_batch must be positive, got {max_batch}")
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        if max_queue is not None and max_queue <= 0:
            raise ValueError(f"max_queue must be positive or None, got {max_queue}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if fallback not in ("auto", "none"):
            raise ValueError(f"fallback must be 'auto' or 'none', got {fallback!r}")
        self.executor = executor
        self.max_batch = max_batch
        self.batch_window = batch_window
        self.workers = workers
        self.max_queue = max_queue
        self.max_retries = max_retries
        self.fallback = fallback
        # Degradation state: once the pool collapses past its breaker the
        # engine pins itself to the in-process fallback (the pool cannot
        # self-heal past an open breaker, so probing it again is pointless).
        # _degraded is a monotonic latch (False -> True, never back): any
        # worker thread may flip it in _note_degraded and everyone else
        # reads it unlocked, which is benign for a single GIL-atomic bool.
        self._degraded = False
        self._fallback_pool: "WorkerPool | None" = None  # guarded-by: _fallback_lock
        self._fallback_lock = threading.Lock()
        self._queue: "queue.Queue[_Request | None]" = queue.Queue()
        self._threads: list[threading.Thread] = []
        self._ids = itertools.count()
        self._running = False  # guarded-by: _state_lock
        # Makes {check _running, enqueue} atomic against stop()'s flip, so a
        # submit racing a concurrent stop() either lands before the shutdown
        # sentinels (and is served) or raises — never a stranded future.
        self._state_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        # Queue depth, counted exactly: Queue.qsize() is read outside the
        # workers' dequeue path, so an admission bound checked against it
        # can overshoot under contention.  This counter moves under its own
        # lock at every enqueue/dequeue, so the max_queue bound, the
        # autoscaler's depth signal, and the tasd_serve_queue_depth gauge
        # all see the same exact value.
        self._depth = 0  # guarded-by: _depth_lock
        self._depth_lock = threading.Lock()
        # Drain machinery: _pending counts admitted-but-unresolved requests;
        # its condition wakes drain() when the last one resolves.  While
        # _draining is set, submit() sheds at the door and /healthz reports
        # "draining".
        self._pending = 0  # guarded-by: _pending_cond
        self._pending_cond = threading.Condition()
        self._draining = False  # guarded-by: _state_lock
        # Hot-swap machinery: one swap at a time, and the most recent
        # request input is retained as the default canary batch.
        self._swap_lock = threading.Lock()
        self._last_input: "np.ndarray | None" = None  # guarded-by: _state_lock
        self._request_stats: list[RequestStats] = []  # guarded-by: _stats_lock
        # Per-layer shard decisions from enable_sharding() (scrape-time
        # telemetry + /statusz explainability); set-once-per-call dict.
        self._shard_decisions: dict = {}
        self._started_at = 0.0  # guarded-by: _state_lock
        self._stopped_at = 0.0  # guarded-by: _state_lock
        self._traces = TraceBuffer(trace_capacity)
        if metrics is True:
            metrics = MetricsRegistry()
        elif metrics is False:
            metrics = None
        self.metrics = metrics
        if metrics is not None:
            # Children resolved once here, so the hot path never pays the
            # registry's name lookup.
            self._m_requests = metrics.counter(
                "tasd_serve_requests_total", "Requests served to completion"
            ).labels()
            self._m_samples = metrics.counter(
                "tasd_serve_samples_total", "Samples served across all requests"
            ).labels()
            self._m_batches = metrics.counter(
                "tasd_serve_batches_total", "Micro-batches dispatched"
            ).labels()
            self._m_errors = metrics.counter(
                "tasd_serve_errors_total", "Requests failed with an exception"
            ).labels()
            self._m_latency = metrics.histogram(
                "tasd_serve_request_latency_seconds", "End-to-end request latency"
            ).labels()
            self._m_queue_wait = metrics.histogram(
                "tasd_serve_queue_wait_seconds", "Submit-to-dispatch queue wait"
            ).labels()
            self._m_batch_size = metrics.histogram(
                "tasd_serve_batch_size",
                "Requests coalesced per micro-batch",
                buckets=BATCH_SIZE_BUCKETS,
            ).labels()
            self._m_occupancy = metrics.histogram(
                "tasd_serve_batch_occupancy",
                "Micro-batch fill fraction of max_batch",
                buckets=OCCUPANCY_BUCKETS,
            ).labels()
            self._m_retried = metrics.counter(
                "tasd_serve_requests_retried_total",
                "Request dispatch attempts repeated after a worker crash",
            ).labels()
            self._m_deadline = metrics.counter(
                "tasd_serve_deadline_exceeded_total",
                "Requests dropped because their deadline expired before dispatch",
            ).labels()
            self._m_rejected = metrics.counter(
                "tasd_serve_queue_rejected_total",
                "Submits rejected by the max_queue admission bound",
            ).labels()
            self._m_fallback = metrics.counter(
                "tasd_serve_fallback_batches_total",
                "Micro-batches served by the in-process fallback executor",
            ).labels()
            self._m_swaps = metrics.counter(
                "tasd_plan_swaps_total", "Hot plan-swaps committed"
            ).labels()
            self._m_rollbacks = metrics.counter(
                "tasd_swap_rollbacks_total",
                "Hot plan-swaps rejected or rolled back",
            ).labels()
            self._m_scale_events = metrics.counter(
                "tasd_pool_scale_events_total", "Autoscale resize events applied"
            ).labels()
            self._m_target_workers = metrics.gauge(
                "tasd_pool_target_workers", "Current worker-count target"
            ).labels()
            self._m_target_workers.set(getattr(executor, "workers", workers))
            self._m_drain = metrics.histogram(
                "tasd_serve_drain_seconds", "Graceful-drain duration"
            ).labels()
            self._m_shard_latency = metrics.histogram(
                "tasd_shard_latency_seconds",
                "Wall time of one shard task inside a sharded forward",
            ).labels()

    # ------------------------------------------------------------------ #
    def start(self) -> "ServingEngine":
        with self._state_lock:
            if self._running:
                return self
            self.executor.install()
            # Fresh run, fresh telemetry: a restart must not mix the previous
            # run's requests or wall-time window into the next report().  The
            # previous report stays readable between stop() and the restart,
            # and the reset happens under the state lock so a report() racing
            # the restart sees either the old window or the new one — never a
            # half-reset mix.
            with self._stats_lock:
                self._request_stats.clear()
            self._stopped_at = 0.0
            self._started_at = time.perf_counter()
            self._draining = False
            self._running = True
        for i in range(self.workers):
            t = threading.Thread(target=self._worker_loop, name=f"serve-worker-{i}", daemon=True)
            t.start()
            self._threads.append(t)
        return self

    def stop(self) -> None:
        with self._state_lock:
            if not self._running:
                return
            self._running = False
        for _ in self._threads:
            self._queue.put(None)  # one sentinel per worker
        for t in self._threads:
            t.join()
        self._threads.clear()
        # Safety net: a request submitted concurrently with stop() may still
        # sit behind the sentinels.  Resolve leftovers synchronously so no
        # future is ever stranded — but compute only the ones someone is
        # still waiting for: a cancelled future is skipped outright, and an
        # expired deadline fails typed instead of burning a forward on an
        # answer nobody will read.  Survivors are re-batched by sample
        # shape, so a burst of stranded same-shape requests drains in a few
        # forwards rather than one each.
        now = time.perf_counter()
        survivors: dict[tuple, list[_Request]] = {}
        while True:
            try:
                leftover = self._queue.get_nowait()
            except queue.Empty:
                break
            if leftover is None:  # surplus shutdown sentinel
                continue
            self._dec_depth()
            leftover.collected_at = now
            if not leftover.future.set_running_or_notify_cancel():
                self._trace_failure(leftover, now, now, 1, "cancelled")
                self._request_resolved()
                continue
            if leftover.deadline_at and now > leftover.deadline_at:
                self._fail_deadline(leftover, now, 1)
                continue
            key = (leftover.x.shape[1:], leftover.x.dtype)
            survivors.setdefault(key, []).append(leftover)
        for batch in survivors.values():
            for chunk_start in range(0, len(batch), self.max_batch):
                self._run_batch(batch[chunk_start : chunk_start + self.max_batch], self.max_retries)
        with self._state_lock:
            self._stopped_at = time.perf_counter()

    def __enter__(self) -> "ServingEngine":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    def submit(
        self, x: np.ndarray, deadline: float | None = None, shard: bool = False
    ) -> Future:
        """Enqueue one request; the future resolves to its output batch.

        ``deadline`` is a per-request latency budget in seconds: a request
        still waiting when it expires is dropped *before* dispatch and its
        future raises :class:`DeadlineExceeded` — no compute is spent on an
        answer the client has stopped waiting for.  Raises
        :class:`QueueFull` when the ``max_queue`` admission bound is hit.

        ``shard=True`` is the latency mode: the request is never coalesced
        with others and its large layers scatter across the pool's workers
        (:meth:`~repro.runtime.pool.WorkerPool.run_sharded`), so one big
        request finishes in less wall time instead of more throughput.
        On substrates without a scatter path it degrades to a normal
        unbatched forward — same bits, no speedup.
        """
        x = np.asarray(x)
        if x.ndim < 1 or x.shape[0] < 1:
            raise ValueError(f"request input needs a leading batch axis, got shape {x.shape}")
        if deadline is not None and deadline <= 0:
            raise ValueError(f"deadline must be positive seconds, got {deadline}")
        now = time.perf_counter()
        deadline_at = now + deadline if deadline is not None else 0.0
        request = _Request(
            next(self._ids), x, Future(), now, deadline_at=deadline_at, shard=shard
        )
        with self._state_lock:
            # A drained engine stays typed: drain() promises QueueFull to
            # late submitters, even after the wind-down finished and the
            # engine stopped.
            if self._draining:
                if self.metrics is not None:
                    self._m_rejected.inc()
                raise QueueFull(
                    "engine is draining: admitted work is being finished, "
                    "new requests are rejected"
                )
            if not self._running:
                raise EngineStopped("serving engine is not running; call start() first")
            with self._depth_lock:
                if self.max_queue is not None and self._depth >= self.max_queue:
                    if self.metrics is not None:
                        self._m_rejected.inc()
                    raise QueueFull(
                        f"request queue is at its max_queue bound ({self.max_queue}); "
                        "shed load, retry later, or raise max_queue"
                    )
                self._depth += 1
            with self._pending_cond:
                self._pending += 1
            self._last_input = x  # default canary batch for swap_plan()
            self._queue.put(request)
        return request.future

    def infer(
        self, x: np.ndarray, timeout: float | None = None, deadline: float | None = None
    ) -> np.ndarray:
        """Synchronous convenience wrapper around :meth:`submit`.

        A wait that times out *cancels* the request: if it has not been
        dispatched yet it is skipped at collection time instead of being
        computed into the void (give up on the answer, give up the work).
        """
        future = self.submit(x, deadline=deadline)
        try:
            return future.result(timeout=timeout)
        except (TimeoutError, _FutureTimeout):
            future.cancel()
            raise

    # ------------------------------------------------------------------ #
    # Zero-downtime operations: drain, hot plan-swap, elastic resize
    # ------------------------------------------------------------------ #
    def drain(self, timeout: float | None = None) -> bool:
        """Gracefully wind the engine down: finish everything admitted,
        admit nothing new, then stop.

        The moment drain begins, :meth:`submit` raises :class:`QueueFull`
        and ``/healthz`` reports ``"draining"`` (still HTTP 200 — the
        server is healthy, just leaving).  Every request admitted before
        that point resolves: queued work is dispatched, in-flight work
        completes.  ``timeout`` bounds the wait in seconds (``None`` =
        wait forever); on expiry the engine stops anyway and the
        still-unresolved requests are settled by :meth:`stop`'s leftover
        drain.  Returns ``True`` when every admitted request resolved
        within the budget.
        """
        with self._state_lock:
            if not self._running:
                return True
            self._draining = True
        t0 = time.perf_counter()
        deadline = t0 + timeout if timeout is not None else None
        with self._pending_cond:
            while self._pending > 0:
                remaining = None if deadline is None else deadline - time.perf_counter()
                if remaining is not None and remaining <= 0:
                    break
                self._pending_cond.wait(min(remaining, 0.5) if remaining is not None else 0.5)
            drained = self._pending <= 0
        self.stop()
        if self.metrics is not None:
            self._m_drain.observe(time.perf_counter() - t0)
        return drained

    def swap_plan(
        self,
        plan_or_path,
        canary: "np.ndarray | None" = None,
        *,
        rtol: float = 1e-6,
        atol: float = 1e-8,
        max_latency_factor: float | None = None,
    ) -> dict:
        """Hot-swap the serving plan with canary validation and rollback.

        ``plan_or_path`` is a compiled
        :class:`~repro.runtime.plan.ExecutionPlan` or the path of a saved
        artifact (loaded through :func:`~repro.runtime.planio.load_plan`,
        digests verified).  The rollout never pauses serving:

        1. **identity gate** — the candidate's per-layer weight
           fingerprint must match the live plan's (same weights,
           different layout/tuning); a wrong-weights artifact is rejected
           before any worker is touched;
        2. **canary** — the pool moves *one* worker onto the new plan and
           runs the canary batch (``canary=``, or the most recently
           served input) on it; outputs must ``allclose`` the live
           plan's, the forward must not raise, and — when
           ``max_latency_factor`` is set — must not be slower than that
           factor times the live plan's canary time;
        3. **roll** — remaining workers move over one at a time, the old
           shared segment is unlinked after the last one detaches;
        4. **post-swap check** — the canary batch re-runs through the
           normal dispatch path; a divergence rolls everything back.

        Any rejection raises :class:`SwapRejected` (``.reason`` says
        why), increments ``tasd_swap_rollbacks_total``, and leaves the
        old plan serving.  Success increments ``tasd_plan_swaps_total``
        and returns a report dict.
        """
        from .planio import PlanDigestError, PlanFormatError, load_plan, plan_fingerprint

        def reject(reason: str, cause: "Exception | None" = None):
            if self.metrics is not None:
                self._m_rollbacks.inc()
            raise SwapRejected(reason) from cause

        with self._swap_lock:
            if self._degraded:
                reject(
                    "engine is degraded (serving through the in-process "
                    "fallback); recover the pool before swapping plans"
                )
            old_plan = getattr(self.executor, "plan", None)
            swap_fn = getattr(self.executor, "swap_plan", None)
            if old_plan is None or swap_fn is None:
                reject(f"{type(self.executor).__name__} cannot hot-swap plans")
            if isinstance(plan_or_path, (str, Path)):
                model = getattr(self.executor, "model", None)
                try:
                    new_plan = load_plan(plan_or_path, model)
                except (OSError, PlanFormatError, PlanDigestError) as exc:
                    reject(f"artifact rejected: {exc}", exc)
            else:
                new_plan = plan_or_path
            try:
                if plan_fingerprint(new_plan) != plan_fingerprint(old_plan):
                    reject(
                        "candidate plan was compiled from different weights "
                        "than the live plan (fingerprint mismatch); this is "
                        "the wrong artifact for this model"
                    )
            except PlanFormatError as exc:
                reject(f"candidate plan's weight identity is unrecoverable: {exc}", exc)
            if canary is not None:
                canary_x = canary
            else:
                with self._state_lock:
                    canary_x = self._last_input
            if canary_x is None:
                reject(
                    "no canary batch available: pass canary= or serve at "
                    "least one request before swapping"
                )
            canary_x = np.asarray(canary_x)
            try:
                t0 = time.perf_counter()
                reference = self.executor.run(canary_x)
                ref_elapsed = time.perf_counter() - t0
            # lint: disable=broad-except — reject() raises typed SwapRejected
            except Exception as exc:
                reject(f"live plan failed the canary batch; swap aborted: {exc}", exc)

            def check(run_fn) -> None:
                t1 = time.perf_counter()
                try:
                    y = run_fn(canary_x)
                except SwapRejected:
                    raise
                except Exception as exc:
                    raise SwapRejected(f"canary execution failed: {exc}") from exc
                elapsed = time.perf_counter() - t1
                if np.asarray(y).shape != np.asarray(reference).shape or not np.allclose(
                    y, reference, rtol=rtol, atol=atol
                ):
                    raise SwapRejected(
                        "canary outputs diverge from the live plan beyond "
                        f"rtol={rtol}/atol={atol}; the artifact does not "
                        "compute the same function"
                    )
                if (
                    max_latency_factor is not None
                    and ref_elapsed > 0
                    and elapsed > max_latency_factor * ref_elapsed
                ):
                    raise SwapRejected(
                        f"canary latency {elapsed * 1e3:.1f} ms exceeds "
                        f"{max_latency_factor}x the live plan's "
                        f"{ref_elapsed * 1e3:.1f} ms"
                    )

            try:
                swapped = swap_fn(new_plan, canary=check)
            except SwapRejected:
                if self.metrics is not None:
                    self._m_rollbacks.inc()
                raise
            except (PlanSwapError, WorkerCrashError, PoolDegradedError) as exc:
                reject(f"swap rolled back: {exc}", exc)
            # Post-swap check through the normal dispatch path: catches a
            # plan that canaries clean on one worker but misbehaves once
            # the fleet serves it (e.g. an attach-order dependence).
            post_error: "Exception | None" = None
            try:
                post_ok = np.allclose(
                    self.executor.run(canary_x), reference, rtol=rtol, atol=atol
                )
            # lint: disable=broad-except — captured into the typed reject() below
            except Exception as exc:
                post_ok, post_error = False, exc
            if not post_ok:
                try:
                    swap_fn(old_plan)  # roll the fleet back, no canary needed
                # lint: disable=broad-except — best-effort rollback; the
                # supervisor respawns onto whichever spec committed
                except Exception:
                    pass
                reject(
                    "post-swap check failed: the swapped fleet no longer "
                    "reproduces the canary reference"
                    + (f" ({post_error})" if post_error is not None else ""),
                    post_error,
                )
            if self.metrics is not None:
                self._m_swaps.inc()
            return {
                "swapped_workers": swapped,
                "canary_samples": int(canary_x.shape[0]),
                "reference_latency": ref_elapsed,
            }

    def scale_to(self, n: int) -> int:
        """Resize serving capacity to ``n`` workers; returns the delta.

        Scales the pool (when it supports :meth:`WorkerPool.scale_to`)
        and the engine's own drain threads together, so queue pickup
        concurrency tracks pool concurrency.  Emits
        ``tasd_pool_scale_events_total`` and the
        ``tasd_pool_target_workers`` gauge.  This is the
        :class:`~repro.runtime.autoscale.Autoscaler`'s actuator, and is
        safe to call directly.
        """
        if n <= 0:
            raise ValueError(f"workers must be positive, got {n}")
        pool_fn = getattr(self.executor, "scale_to", None)
        if pool_fn is not None:
            try:
                pool_fn(n)
            except NotImplementedError:
                pass  # fixed-size substrate: scale only the drain threads
        with self._state_lock:
            delta = n - self.workers
            self.workers = n
            running = self._running
        if running and delta != 0:
            self._threads = [t for t in self._threads if t.is_alive()]
            thread_delta = n - len(self._threads)
            for i in range(max(0, thread_delta)):
                t = threading.Thread(
                    target=self._worker_loop,
                    name=f"serve-worker-scaled-{len(self._threads) + i}",
                    daemon=True,
                )
                t.start()
                self._threads.append(t)
            for _ in range(max(0, -thread_delta)):
                # One sentinel retires exactly one drain thread; requests
                # queued behind it are picked up by the survivors.
                self._queue.put(None)
        if self.metrics is not None and delta != 0:
            self._m_scale_events.inc()
            self._m_target_workers.set(n)
        return delta

    # ------------------------------------------------------------------ #
    def _dec_depth(self) -> None:
        """One request left the queue (worker pickup or shutdown drain)."""
        with self._depth_lock:
            self._depth -= 1

    @property
    def running(self) -> bool:
        """True while the engine accepts and dispatches work."""
        with self._state_lock:
            return self._running

    @property
    def queue_depth(self) -> int:
        """Exact number of requests waiting in the queue right now.

        This is the autoscaler's depth signal and the value behind the
        ``tasd_serve_queue_depth`` gauge and the ``max_queue`` admission
        bound — all three read the same counter.
        """
        with self._depth_lock:
            return self._depth

    def enable_sharding(self, max_shards: int | None = None, **kwargs) -> dict:
        """Micro-benchmark and install per-layer shard counts on the pool.

        Runs :meth:`~repro.runtime.pool.WorkerPool.auto_shard` on the
        executor — fan-out overhead is measured on the pool's actual
        dispatch path, and layers shard only where the numbers beat the
        unsharded GEMM — then remembers the decisions for telemetry
        (``tasd_shard_imbalance_ratio`` per sharded layer at scrape time).
        Requests submitted with ``shard=True`` route through the result.
        Raises :class:`ValueError` on substrates without a scatter path
        (e.g. a bare :class:`PlanExecutor`).
        """
        auto_shard = getattr(self.executor, "auto_shard", None)
        if auto_shard is None:
            raise ValueError(
                f"{type(self.executor).__name__} has no scatter/gather path; "
                "serve through a thread or process pool to shard layers"
            )
        decisions = auto_shard(max_shards=max_shards, **kwargs)
        self._shard_decisions = dict(decisions)
        return decisions

    def _request_resolved(self) -> None:
        """One admitted request reached a terminal state (result set,
        failed, deadline-dropped, or cancelled-and-skipped); wakes
        :meth:`drain` when the last one lands."""
        with self._pending_cond:
            self._pending -= 1
            if self._pending <= 0:
                self._pending_cond.notify_all()

    def _gather_batch(self, first: _Request) -> tuple[list[_Request], "_Request | None"]:
        """Coalesce compatible requests behind ``first`` within the window.

        Returns the batch plus an optional *carry*: a request whose sample
        shape did not match the batch.  The carry stays with this worker (it
        opens the next batch) rather than being requeued — requeueing could
        land it behind a shutdown sentinel and strand its future forever.
        """
        batch = [first]
        carry: _Request | None = None
        if first.shard:
            # A sharded request is a latency request: it owns its forward
            # (the whole pool scatters one batch), so waiting the batch
            # window to coalesce it would only add the latency it exists
            # to remove.
            return batch, carry
        deadline = time.perf_counter() + self.batch_window
        while len(batch) < self.max_batch:
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                break
            try:
                req = self._queue.get(timeout=remaining)
            except queue.Empty:
                break
            if req is None:  # shutdown sentinel: hand it to another worker
                self._queue.put(None)
                break
            self._dec_depth()
            req.collected_at = time.perf_counter()
            if (
                req.shard
                or req.x.shape[1:] != first.x.shape[1:]
                or req.x.dtype != first.x.dtype
            ):
                # Mismatched sample shape or dtype (concatenating would
                # reshape/upcast and change the request's exact result), or
                # a sharded request that must open its own singleton batch.
                carry = req
                break
            batch.append(req)
        return batch, carry

    def _worker_loop(self) -> None:
        carry: _Request | None = None
        while True:
            if carry is not None:
                first, carry = carry, None
            else:
                try:
                    first = self._queue.get(timeout=0.05)
                except queue.Empty:
                    if not self.running:
                        return
                    continue
                if first is None:
                    return
                self._dec_depth()
                first.collected_at = time.perf_counter()
            batch, carry = self._gather_batch(first)
            self._execute_batch(batch)

    def _execute_batch(self, batch: list[_Request]) -> None:
        """Admission-filter a freshly formed micro-batch, then dispatch it."""
        now = time.perf_counter()
        live: list[_Request] = []
        for req in batch:
            if not req.future.set_running_or_notify_cancel():
                # infer(timeout=) gave up on this request: skip it here
                # instead of computing an answer nobody will collect.
                self._trace_failure(req, now, now, len(batch), "cancelled")
                self._request_resolved()
                continue
            if req.deadline_at and now > req.deadline_at:
                self._fail_deadline(req, now, len(batch))
                continue
            live.append(req)
        if live:
            self._run_batch(live, self.max_retries)

    def _run_batch(self, batch: list[_Request], retries_left: int) -> None:
        """Dispatch one micro-batch with crash recovery.

        A :class:`~repro.runtime.pool.WorkerCrashError` (the worker died or
        missed its reply deadline with this batch in flight) is retried up
        to ``max_retries`` times on whatever worker the pool hands over
        next — by then the supervisor has usually respawned the dead one.
        When the budget is spent on a multi-request batch, the batch is
        split in half with a fresh budget per half, isolating a poison
        request from its batchmates; a lone request that keeps killing
        workers fails with the crash error rather than being run
        in-process, where it could take the whole server down.  A pool
        collapsed past its circuit breaker (:class:`PoolDegradedError`)
        switches the engine to the in-process fallback permanently.
        """
        if any(req.deadline_at for req in batch):
            # Re-checked per attempt: a retry after a crash must not
            # dispatch requests whose budget the crash already spent.
            now = time.perf_counter()
            keep = []
            for req in batch:
                if req.deadline_at and now > req.deadline_at:
                    self._fail_deadline(req, now, len(batch))
                else:
                    keep.append(req)
            batch = keep
            if not batch:
                return
        dispatched_at = time.perf_counter()
        for req in batch:
            req.attempts += 1
        sizes = [req.x.shape[0] for req in batch]
        inputs = np.concatenate([req.x for req in batch], axis=0) if len(batch) > 1 else batch[0].x
        try:
            # Sharded requests ride singleton batches (_gather_batch never
            # coalesces them), so batch[0] speaks for the whole batch.
            outputs = self._dispatch(inputs, shard=batch[0].shard)
        except WorkerCrashError as exc:
            if self._note_degraded() is not None:
                self._run_batch(batch, retries_left)  # pool collapsed: fallback serves it
                return
            if retries_left > 0:
                if self.metrics is not None:
                    self._m_retried.inc(len(batch))
                self._run_batch(batch, retries_left - 1)
                return
            if len(batch) > 1:
                mid = len(batch) // 2
                self._run_batch(batch[:mid], self.max_retries)
                self._run_batch(batch[mid:], self.max_retries)
                return
            self._fail_batch(batch, exc, dispatched_at)
            return
        except PoolDegradedError as exc:
            if self._note_degraded() is not None:
                self._run_batch(batch, retries_left)
                return
            self._fail_batch(batch, exc, dispatched_at)
            return
        # lint: disable=broad-except — captured into every batch future via
        # _fail_batch; retrying a deterministic error would fail identically
        except Exception as exc:
            self._fail_batch(batch, exc, dispatched_at)
            return
        done_at = time.perf_counter()
        self._record_batch(batch, dispatched_at, done_at)
        offsets = np.cumsum([0] + sizes)
        for req, lo, hi in zip(batch, offsets[:-1], offsets[1:]):
            req.future.set_result(outputs[lo:hi])
            self._request_resolved()
            self._traces.record(
                RequestTrace.from_timestamps(
                    request_id=req.request_id,
                    submitted_at=req.submitted_at,
                    collected_at=req.collected_at,
                    dispatched_at=dispatched_at,
                    done_at=done_at,
                    resolved_at=time.perf_counter(),
                    batch_size=len(batch),
                    samples=req.x.shape[0],
                    attempts=req.attempts,
                )
            )

    @hot_path
    def _record_batch(self, batch: list[_Request], dispatched_at: float, done_at: float) -> None:
        """Record one completed micro-batch's stats and metrics.

        Runs once per micro-batch on the serving path, between compute and
        reply, so it is fenced ``@hot_path``: no wall clock, no I/O, no
        lock construction — only counter bumps and one guarded extend.
        """
        compute_time = done_at - dispatched_at
        batch_stats = [
            RequestStats(
                request_id=req.request_id,
                batch_size=len(batch),
                samples=req.x.shape[0],
                queue_time=dispatched_at - req.submitted_at,
                compute_time=compute_time,
                latency=done_at - req.submitted_at,
                attempts=req.attempts,
            )
            for req in batch
        ]
        # One atomic extend per micro-batch: a report() racing this never
        # sees a half-recorded batch (some of its requests but not others).
        with self._stats_lock:
            self._request_stats.extend(batch_stats)
        if self.metrics is not None:
            self._m_batches.inc()
            self._m_batch_size.observe(len(batch))
            self._m_occupancy.observe(len(batch) / self.max_batch)
            for stats in batch_stats:
                self._m_requests.inc()
                self._m_samples.inc(stats.samples)
                self._m_latency.observe(stats.latency)
                self._m_queue_wait.observe(stats.queue_time)

    # ------------------------------------------------------------------ #
    # Recovery plumbing.
    # ------------------------------------------------------------------ #
    def _dispatch(self, inputs: np.ndarray, shard: bool = False) -> np.ndarray:
        # lint: disable=guarded-field — set-once pointer published before
        # _degraded flips; never rebound, so the unlocked read is stable
        fallback = self._fallback_pool
        if self._degraded and fallback is not None:
            if self.metrics is not None:
                self._m_fallback.inc()
            return fallback.run(inputs)
        if shard:
            run_sharded = getattr(self.executor, "run_sharded", None)
            if run_sharded is not None:
                observer = (
                    self._m_shard_latency.observe if self.metrics is not None else None
                )
                return run_sharded(inputs, observer=observer)
        return self.executor.run(inputs)

    def _note_degraded(self) -> "WorkerPool | None":
        """Pin the engine to its in-process fallback once the pool collapses.

        Returns the fallback pool when degraded serving is active (building
        and installing it on first use), else ``None``.  An open circuit
        breaker never closes on its own, so once collapsed the pool is not
        probed again — every later batch goes straight to the fallback.
        """
        if not self._degraded and not getattr(self.executor, "degraded", False):
            return None
        fallback: "WorkerPool | None" = None
        if self.fallback != "none" and not isinstance(self.executor, PlanExecutor):
            with self._fallback_lock:
                if self._fallback_pool is None:
                    model = getattr(self.executor, "model", None)
                    plan = getattr(self.executor, "plan", None)
                    if model is not None and plan is not None:
                        self._fallback_pool = PlanExecutor(model, plan).install()
                fallback = self._fallback_pool
        if fallback is not None:
            self._degraded = True
        return fallback

    def _fail_deadline(self, req: _Request, now: float, batch_size: int) -> None:
        if self.metrics is not None:
            self._m_deadline.inc()
        exc = DeadlineExceeded(
            f"request {req.request_id} missed its deadline by "
            f"{now - req.deadline_at:.3f}s before dispatch"
        )
        req.future.set_exception(exc)
        self._request_resolved()
        self._trace_failure(req, now, now, batch_size, "DeadlineExceeded: dropped before dispatch")

    def _fail_batch(self, batch: list[_Request], exc: Exception, dispatched_at: float) -> None:
        failed_at = time.perf_counter()
        if self.metrics is not None:
            self._m_errors.inc(len(batch))
        label = f"{type(exc).__name__}: {exc}"
        for req in batch:
            req.future.set_exception(exc)
            self._request_resolved()
            self._trace_failure(req, dispatched_at, failed_at, len(batch), label)

    def _trace_failure(
        self, req: _Request, dispatched_at: float, failed_at: float, batch_size: int, error: str
    ) -> None:
        self._traces.record(
            RequestTrace.from_timestamps(
                request_id=req.request_id,
                submitted_at=req.submitted_at,
                collected_at=req.collected_at,
                dispatched_at=dispatched_at,
                done_at=failed_at,
                resolved_at=failed_at,
                batch_size=batch_size,
                samples=req.x.shape[0],
                error=error,
                attempts=req.attempts,
            )
        )

    # ------------------------------------------------------------------ #
    def report(self) -> ServeReport:
        """Latency/throughput report over everything served so far.

        The request list is snapshotted under the stats lock (batches land
        atomically, so a mid-batch report never sees a torn micro-batch),
        and — when metrics are on — carries the engine's live latency
        histogram, so ``p50``/``p95``/``p99`` are bucket-exact with what
        ``/metrics`` exports.
        """
        with self._state_lock:
            started, stopped = self._started_at, self._stopped_at
        end = stopped if stopped > started else time.perf_counter()
        with self._stats_lock:
            requests = list(self._request_stats)
        wall = max(0.0, end - started) if started else 0.0
        histogram = self._m_latency.snapshot() if self.metrics is not None else None
        return ServeReport(requests=requests, wall_time=wall, histogram=histogram)

    def traces(self) -> list:
        """Span traces of the most recent requests (oldest first, bounded)."""
        return self._traces.snapshot()

    def worker_stats(self) -> list[WorkerStat]:
        """Per-worker liveness/served counts from the pool (empty if opaque)."""
        fn = getattr(self.executor, "worker_stats", None)
        return list(fn()) if fn is not None else []

    def healthz(self) -> tuple[bool, dict]:
        """Liveness with degradation: ``ok`` / ``draining`` / ``degraded``
        / ``dead``.

        ``ok``, ``draining``, and ``degraded`` all scrape as HTTP 200 — a
        draining server is finishing admitted work before a planned stop,
        and a degraded one is still answering, just without its pool
        (in-process fallback, or mid-respawn with no worker up right now)
        — while ``dead`` (stopped, or collapsed with no fallback to serve
        through) scrapes as 503.
        """
        workers = self.worker_stats()
        alive = sum(1 for w in workers if w.alive)
        pool_degraded = self._degraded or bool(getattr(self.executor, "degraded", False))
        with self._state_lock:
            running, draining = self._running, self._draining
        if not running:
            status = "dead"
        elif draining:
            # Still healthy — finishing admitted work, refusing new work.
            # Load balancers read this as "stop routing here" while the
            # scrape stays 200 (the server is leaving, not failing).
            status = "draining"
        elif pool_degraded:
            # lint: disable=guarded-field — set-once pointer; a stale read
            # only re-checks whether a fallback *could* be built, harmless
            can_fallback = self._degraded and self._fallback_pool is not None
            if not can_fallback:
                can_fallback = self.fallback != "none" and not isinstance(
                    self.executor, PlanExecutor
                )
            status = "degraded" if can_fallback else "dead"
        elif workers and alive == 0:
            # No worker up *right now*: degraded while a supervisor can
            # still respawn, dead when nothing will bring one back.
            status = "degraded" if getattr(self.executor, "respawn", False) else "dead"
        else:
            status = "ok"
        return status != "dead", {
            "status": status,
            "running": running,
            "workers_alive": alive,
            "workers_total": len(workers),
            "queue_depth": self.queue_depth,
            # lint: disable=guarded-field — set-once pointer, snapshot read
            "fallback_active": self._fallback_pool is not None and self._degraded,
        }

    def metrics_snapshot(self) -> dict:
        """One coherent scrape: engine registry + pool views, merged.

        The engine's own histograms/counters are recorded live on the hot
        path; everything pool-side (per-layer GEMM histograms merged across
        all workers — processes included, via the counters they ship with
        replies — cache counters, per-worker liveness) is assembled at
        scrape time from :meth:`WorkerPool.stats`, so scraping costs the
        scraper, not the serving path.
        """
        snaps = [self.metrics.snapshot()] if self.metrics is not None else []
        registry = MetricsRegistry()
        stats_fn = getattr(self.executor, "stats", None)
        plan = getattr(self.executor, "plan", None)
        if stats_fn is not None:
            backends = {}
            if plan is not None:
                backends = {
                    name: (lp.backend if lp.mode == "compiled" else lp.mode)
                    for name, lp in plan.layers.items()
                }
            export_executor_stats(registry, stats_fn(), backends)
        if plan is not None:
            info = plan.cache.info()
            registry.gauge("tasd_cache_resident", "Operand-cache entries resident").set(
                info["resident"]
            )
            registry.gauge("tasd_cache_capacity", "Operand-cache capacity bound").set(
                info["capacity"]
            )
        alive_g = registry.gauge(
            "tasd_worker_alive", "1 while the pool worker is serving", labels=("worker",)
        )
        served_c = registry.counter(
            "tasd_worker_requests_total", "Forwards served per pool worker", labels=("worker",)
        )
        for w in self.worker_stats():
            alive_g.labels(worker=str(w.uid)).set(1.0 if w.alive else 0.0)
            served_c.labels(worker=str(w.uid)).inc(w.requests)
        registry.gauge("tasd_serve_queue_depth", "Requests waiting in the queue").set(
            self.queue_depth
        )
        registry.gauge("tasd_serve_running", "1 while the engine accepts requests").set(
            1.0 if self.running else 0.0
        )
        registry.gauge(
            "tasd_serve_traces_dropped", "Traces discarded by the ring-buffer bound"
        ).set(self._traces.dropped)
        # Recovery telemetry: supervised pools count deaths/respawns on
        # their own attributes (no registry on the hot path); exported here
        # at scrape time alongside the engine's degradation state.
        respawns = getattr(self.executor, "respawns", None)
        if respawns is not None:
            registry.counter(
                "tasd_worker_respawns_total", "Workers respawned by the pool supervisor"
            ).inc(respawns)
        deaths = getattr(self.executor, "deaths", None)
        if deaths is not None:
            registry.counter(
                "tasd_worker_deaths_total", "Pool workers retired after dying"
            ).inc(deaths)
        degraded = self._degraded or bool(getattr(self.executor, "degraded", False))
        registry.gauge(
            "tasd_serve_degraded",
            "1 while the pool has collapsed and the engine serves degraded",
        ).set(1.0 if degraded else 0.0)
        # Shard telemetry: the pools count sharded forwards / shard retries
        # on their own attributes (no registry on the hot path, same as
        # deaths/respawns); the nnz-imbalance gauge reports the installed
        # tables — enable_sharding() decisions first, the plan's own
        # compile-time tables otherwise.
        sharded = getattr(self.executor, "sharded_forwards", None)
        if sharded is not None:
            registry.counter(
                "tasd_sharded_forwards_total",
                "Forwards served through the scatter/gather shard path",
            ).inc(sharded)
        shard_retries = getattr(self.executor, "shard_retries", None)
        if shard_retries is not None:
            registry.counter(
                "tasd_shard_retries_total",
                "Shard tasks re-dispatched after a worker death",
            ).inc(shard_retries)
        shard_specs = {
            name: d.spec for name, d in self._shard_decisions.items() if d.spec is not None
        }
        if not shard_specs and plan is not None:
            shard_specs = {
                name: lp.shards for name, lp in plan.layers.items() if lp.shards is not None
            }
        if shard_specs:
            imbalance_g = registry.gauge(
                "tasd_shard_imbalance_ratio",
                "Max/mean per-shard nnz of the layer's installed shard table",
                labels=("layer",),
            )
            for name, spec in shard_specs.items():
                imbalance_g.labels(layer=name).set(spec.imbalance)
        snaps.append(registry.snapshot())
        return merge_snapshots(*snaps)

    def statusz(self) -> str:
        """Human-readable recent-request table plus the report summary."""
        return self.report().summary() + "\n\n" + self._traces.table()

    def serve_metrics(self, port: int = 0, host: str = "127.0.0.1") -> MetricsServer:
        """Expose this engine's telemetry over HTTP (``/metrics``,
        ``/metrics.json``, ``/healthz``, ``/statusz``).

        ``port=0`` binds an ephemeral port (read ``server.port``).  The
        server runs on a daemon thread and outlives ``stop()`` — a stopped
        engine scrapes as unhealthy rather than connection-refused — so
        callers own its lifetime (``server.close()`` or use it as a
        context manager).
        """
        return MetricsServer(
            snapshot_fn=self.metrics_snapshot,
            health_fn=self.healthz,
            status_fn=self.statusz,
            host=host,
            port=port,
        )
