"""Ahead-of-time plan compiler: Module + TASDTransform → ExecutionPlan.

A compiled plan fixes, per GEMM layer, everything that does not depend on
the input: the weight-side TASD decomposition, its :class:`CompressedNM`
storage, and the gather tables of the structured kernels.  Weights are
decomposed and compressed exactly once — at plan-build time — so serving a
request costs only the structured GEMMs themselves (SparseRT's insight,
applied to the TASD datapath).

Three execution modes exist for every layer:

- ``compiled``  — structured GEMMs over the pre-compressed weight terms;
- ``per_call``  — re-decompose through :func:`tasd_matmul` on every forward
  (the uncompiled baseline the benchmarks compare against);
- ``dense``     — plain dense GEMM (layers the transform leaves dense).

Compiled layers additionally carry a kernel *backend* (see
:mod:`repro.runtime.backends`): ``LayerPlan.gemm`` is the single seam every
structured GEMM flows through, and the backend name chooses which kernel
implementation serves it.  ``compile_plan(..., autotune=True)`` picks the
backend per layer by micro-benchmark; the winner is visible in
``plan.summary()``.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

import numpy as np

from repro.core.series import DENSE_CONFIG, TASDConfig
from repro.core.sparse_ops import tasd_matmul
from repro.nn.layers import Conv2d, _GemmLayer
from repro.nn.module import Module
from repro.pruning.targets import gemm_layers
from repro.tasder.transform import (
    TASDTransform,
    _activation_axis,
    clear_transform,
    decompose_activation,
)
from repro.tensor.blocks import pad_to_multiple

from repro.analysis.annotations import hot_path

from .autotune import AutotuneResult, autotune_operand
from .backends import DEFAULT_BACKEND, get_backend
from .cache import CompiledOperand, OperandCache, tensor_digest
from .counters import LayerCounters
from .shard import ShardSpec, plan_shards, row_nnz_stats

__all__ = ["LayerPlan", "ExecutionPlan", "compile_plan"]

MODES = ("compiled", "per_call", "dense")


@dataclass
class LayerPlan:
    """Everything one GEMM layer needs to execute requests against.

    The plan owns the layer's GEMM: :meth:`gemm` maps a 2-D input block
    ``(batch_rows, k)`` to ``(batch_rows, out)`` exactly as ``x2 @ W.T``
    would, routed through whichever kernel ``mode`` selects, and records
    MAC / wall-time counters as it goes.
    """

    name: str
    kind: str  # "linear" | "conv2d"
    mode: str
    weight_config: TASDConfig
    activation_config: TASDConfig
    activation_axis: int
    operand: CompiledOperand | None  # compressed weights (compiled mode)
    dense_weight: np.ndarray | None  # weight matrix (dense / per-call modes)
    cache: OperandCache | None = None
    backend: str = DEFAULT_BACKEND  # structured-GEMM kernel (compiled mode)
    autotune: AutotuneResult | None = None  # sweep that chose the backend
    weight_digest: str | None = None  # content digest of the source weight
    shards: ShardSpec | None = None  # nnz-balanced shard table (persists with the plan)
    # Scatter/gather hook: when set (pool driver replicas only), compiled
    # GEMMs route through ``dispatcher(self, xt)`` instead of the local
    # backend.  Never persisted, pickled, or compared.
    dispatcher: Callable | None = field(default=None, repr=False, compare=False)
    counters: LayerCounters = field(default_factory=LayerCounters)

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"unknown plan mode {self.mode!r}; options: {MODES}")
        if self.mode == "compiled" and self.operand is None:
            raise ValueError("compiled mode requires a compiled operand")
        if self.mode in ("per_call", "dense") and self.dense_weight is None:
            raise ValueError(f"{self.mode} mode requires the dense weight matrix")
        if self.mode == "compiled":
            get_backend(self.backend)  # fail at build time, not mid-forward

    # ------------------------------------------------------------------ #
    @property
    def out_features(self) -> int:
        if self.operand is not None:
            return self.operand.original_shape[0]
        return self.dense_weight.shape[0]

    @property
    def reduction(self) -> int:
        if self.operand is not None:
            return self.operand.original_shape[1]
        return self.dense_weight.shape[1]

    def transform_input(self, x: np.ndarray) -> np.ndarray:
        """Dynamic TASD-A decomposition of the incoming activation, if any."""
        if self.activation_config.is_dense:
            return x
        if self.cache is not None:
            return self.cache.view(x, self.activation_config, self.activation_axis)
        return decompose_activation(x, self.activation_config, self.activation_axis)

    # ------------------------------------------------------------------ #
    @hot_path
    def gemm(self, x2: np.ndarray) -> np.ndarray:
        """Execute this layer's GEMM: ``x2 @ W_eff.T`` through the plan."""
        t0 = time.perf_counter()
        if x2.ndim != 2 or x2.shape[1] != self.reduction:
            # Never silently zero-pad a wrong-width input up to the padded
            # reduction: an (rows, k-1) block would "work" and compute
            # garbage.  Only the exact reduction width is a valid GEMM.
            raise ValueError(
                f"layer {self.name!r} expects GEMM input of shape "
                f"(rows, {self.reduction}), got {x2.shape}"
            )
        batch_rows = x2.shape[0]
        if self.mode == "compiled":
            xt = x2.T
            if xt.shape[0] != self.operand.padded_shape[1]:
                xt = pad_to_multiple(xt, self.weight_config.block_lcm, axis=0)
            if self.dispatcher is not None:
                y = self.dispatcher(self, xt).T
            else:
                y = self.operand.matmul(xt, backend=self.backend).T
            structured = self.operand.slots * batch_rows
        elif self.mode == "per_call":
            w = self.dense_weight
            lcm = self.weight_config.block_lcm
            w_pad = pad_to_multiple(w, lcm, axis=-1)
            xt = pad_to_multiple(x2.T, lcm, axis=0)
            y = tasd_matmul(w_pad, xt, self.weight_config).T
            slots = sum(
                (w_pad.shape[1] // p.m) * p.n for p in self.weight_config.patterns
            ) * w.shape[0]
            structured = slots * batch_rows
        else:  # dense
            y = x2 @ self.dense_weight.T
            structured = batch_rows * self.reduction * self.out_features
        dense = batch_rows * self.reduction * self.out_features
        # batch_rows is the GEMM's column count once the operand side is
        # transposed — the very shape autotune's ``sample_cols`` models —
        # so recording it lets a serve run re-tune on observed shapes.
        self.counters.record(structured, dense, time.perf_counter() - t0, cols=batch_rows)
        return y

    __call__ = gemm

    def describe(self) -> str:
        storage = "-"
        if self.operand is not None:
            _, _, _, skew = row_nnz_stats(self.operand)
            storage = (
                f"{self.operand.total_nnz} nnz / "
                f"{self.operand.compressed_bits / 8192:.1f} KiB, "
                f"row-skew {skew:.2f}x"
            )
            if self.shards is not None:
                storage += (
                    f", {self.shards.num_shards} shards "
                    f"({self.shards.imbalance:.2f}x nnz imbalance)"
                )
        backend = self.backend if self.mode == "compiled" else "-"
        if self.autotune is not None:
            backend += f" ({self.autotune.speedup_vs_reference:.1f}x ref)"
        return (
            f"{self.name:<28s} {self.kind:<7s} {self.mode:<9s} "
            f"W={str(self.weight_config):<10s} A={str(self.activation_config):<10s} "
            f"{backend:<28s} {storage}"
        )


@dataclass
class ExecutionPlan:
    """An ordered set of layer plans compiled for one model + transform."""

    layers: dict[str, LayerPlan]
    transform: TASDTransform
    cache: OperandCache
    mode: str
    build_time: float

    # ------------------------------------------------------------------ #
    @property
    def total_nnz(self) -> int:
        return sum(p.operand.total_nnz for p in self.layers.values() if p.operand is not None)

    @property
    def compressed_bits(self) -> float:
        return sum(p.operand.compressed_bits for p in self.layers.values() if p.operand is not None)

    def reset_counters(self) -> None:
        for plan in self.layers.values():
            plan.counters.reset()

    def backend_choices(self) -> dict[str, str]:
        """Kernel backend per *compiled* layer (autotune / CI smoke hook)."""
        return {
            name: plan.backend
            for name, plan in self.layers.items()
            if plan.mode == "compiled"
        }

    def metrics_registry(self):
        """One-shot registry of compile-time metrics (CLI ``--metrics-json``).

        Covers everything knowable without serving traffic: build time,
        compressed footprint, per-layer nnz/slots and the chosen kernel
        backend, cache occupancy and counters, plus any execution counters
        the plan has already accumulated.  ``registry.snapshot()`` is the
        JSON artifact; ``registry.render()`` the Prometheus text.
        """
        from .metrics import MetricsRegistry, export_executor_stats

        registry = MetricsRegistry()
        registry.gauge("tasd_plan_layers", "Layers covered by the plan").set(len(self.layers))
        registry.gauge("tasd_plan_build_seconds", "Plan compile time").set(self.build_time)
        registry.gauge("tasd_plan_total_nnz", "Non-zeros across compressed operands").set(
            self.total_nnz
        )
        registry.gauge("tasd_plan_compressed_bytes", "Compressed operand storage").set(
            self.compressed_bits / 8
        )
        layer_nnz = registry.gauge(
            "tasd_plan_layer_nnz", "Compressed non-zeros per layer", labels=("layer",)
        )
        layer_info = registry.gauge(
            "tasd_plan_layer_info",
            "1 per layer, keyed by execution mode and kernel backend",
            labels=("layer", "mode", "backend"),
        )
        layer_skew = registry.gauge(
            "tasd_plan_layer_nnz_skew",
            "Max-row over mean-row nnz per compiled layer (1.0 = uniform work)",
            labels=("layer",),
        )
        for name, lp in self.layers.items():
            layer_nnz.labels(layer=name).set(lp.operand.total_nnz if lp.operand else 0)
            backend = lp.backend if lp.mode == "compiled" else lp.mode
            layer_info.labels(layer=name, mode=lp.mode, backend=backend).set(1)
            if lp.operand is not None:
                layer_skew.labels(layer=name).set(row_nnz_stats(lp.operand)[3])
        info = self.cache.info()
        registry.gauge("tasd_cache_resident", "Operand-cache entries resident").set(
            info["resident"]
        )
        registry.gauge("tasd_cache_capacity", "Operand-cache capacity bound").set(
            info["capacity"]
        )
        from .counters import ExecutorStats

        stats = ExecutorStats(
            layers={name: lp.counters.snapshot() for name, lp in self.layers.items()},
            cache=dataclasses.replace(self.cache.counters),
        )
        export_executor_stats(registry, stats, self.backend_choices())
        return registry

    def clone_layer_plans(self) -> dict[str, LayerPlan]:
        """Per-replica layer plans: shared operands, private counters.

        Everything expensive (compressed terms, gather tables, backend
        state, the operand cache) is shared by reference — operands are
        immutable — while each clone gets its own :class:`LayerCounters`
        so concurrent replicas never race on the hot-path counters.
        """
        return {
            name: dataclasses.replace(plan, counters=LayerCounters())
            for name, plan in self.layers.items()
        }

    # ------------------------------------------------------------------ #
    def save(self, path) -> Path:
        """Persist this plan to a single ``.npz`` + JSON-manifest artifact.

        The artifact is keyed by the content digests of the weights the
        plan was compiled from; :func:`repro.runtime.planio.load_plan`
        rebuilds the plan from it in milliseconds and refuses models whose
        weights have drifted.
        """
        from .planio import save_plan

        return save_plan(self, path)

    # ------------------------------------------------------------------ #
    def install(self, model: Module, layer_plans: dict[str, LayerPlan] | None = None) -> None:
        """Attach layer plans to the model's GEMM layers (the fast path).

        Any TASD transform applied via ``tasder.apply`` is cleared first:
        the plan subsumes both the weight and activation sides, and leaving
        the transform's forward wrappers in place would decompose every
        activation twice per request.  ``layer_plans`` substitutes a clone
        set (see :meth:`clone_layer_plans`) — the replica executor installs
        one clone set per model replica.
        """
        plans = layer_plans if layer_plans is not None else self.layers
        if set(plans) != set(self.layers):
            raise KeyError("layer_plans must cover exactly the plan's layers")
        layers = dict(gemm_layers(model, include_head=True))
        missing = set(plans) - set(layers)
        if missing:
            raise KeyError(f"plan names layers the model lacks: {sorted(missing)}")
        clear_transform(model)
        for name, plan in plans.items():
            layers[name].set_compiled_plan(plan)

    def uninstall(self, model: Module) -> None:
        """Detach all layer plans, restoring the uncompiled forward."""
        for _, layer in gemm_layers(model, include_head=True):
            layer.set_compiled_plan(None)

    # ------------------------------------------------------------------ #
    def summary(self) -> str:
        lines = [
            f"execution plan: {len(self.layers)} layers, mode={self.mode}, "
            f"built in {self.build_time * 1e3:.1f} ms",
            f"compressed weights: {self.total_nnz} nnz, "
            f"{self.compressed_bits / 8192:.1f} KiB; {self.cache.counters}",
        ]
        lines += [plan.describe() for plan in self.layers.values()]
        return "\n".join(lines)


def _layer_kind(layer: _GemmLayer) -> str:
    return "conv2d" if isinstance(layer, Conv2d) else "linear"


def compile_plan(
    model: Module,
    transform: TASDTransform,
    cache: OperandCache | None = None,
    mode: str = "compiled",
    cache_activations: bool = False,
    backend: str = DEFAULT_BACKEND,
    autotune: bool = False,
    autotune_cols: int = 32,
    autotune_repeats: int = 3,
    autotune_backends: tuple[str, ...] | None = None,
    autotune_exact_only: bool = False,
    observed_cols: dict[str, int] | None = None,
    shards: int = 0,
) -> ExecutionPlan:
    """Compile a model + transform into an :class:`ExecutionPlan`.

    Every GEMM layer (heads included) receives a plan: layers the transform
    targets get their weights decomposed and compressed exactly once, via
    the operand ``cache``; untargeted layers get dense plans so the
    executor's counters cover the whole network.  ``mode="per_call"``
    builds the uncompiled baseline instead (no compression at build time;
    every forward re-decomposes through ``tasd_matmul``).

    ``backend`` fixes the structured-GEMM kernel for every compiled layer;
    ``autotune=True`` instead micro-benchmarks the candidate backends per
    layer (see :func:`repro.runtime.autotune.autotune_operand`) and records
    each winner — ``autotune_exact_only`` restricts the sweep to backends
    bit-identical to the reference kernel.  ``observed_cols`` maps layer
    names to the GEMM column widths a previous serving run actually saw
    (:meth:`repro.runtime.counters.ExecutorStats.observed_cols`); when
    autotuning, a layer present in the map is timed on its observed width
    instead of the representative ``autotune_cols``.

    ``shards > 1`` attaches an equal-nnz :class:`ShardSpec` table to every
    shardable compiled layer (see :func:`repro.runtime.shard.plan_shards`);
    the tables persist with the plan and let the pools scatter one
    forward's big GEMMs across workers.

    ``cache_activations`` routes dynamic TASD-A views through the operand
    cache too.  Off by default: it only pays when identical activations
    recur (retries, replayed calibration batches) — in steady-state serving
    the hit rate is ~0 while every forward would pay a full-tensor digest
    and the cache would pin large activation copies.
    """
    if mode not in ("compiled", "per_call"):
        raise ValueError(f"compile mode must be 'compiled' or 'per_call', got {mode!r}")
    cache = cache if cache is not None else OperandCache()
    t0 = time.perf_counter()
    plans: dict[str, LayerPlan] = {}
    for name, layer in gemm_layers(model, include_head=True):
        weight_config = transform.weight_configs.get(name, DENSE_CONFIG)
        activation_config = transform.activation_configs.get(name, DENSE_CONFIG)
        w = layer.weight_matrix()
        # Hashed once per layer: the digest is both the cache key and the
        # identity plan persistence verifies restarts against.
        w_digest = tensor_digest(w)
        if weight_config.is_dense:
            layer_mode, operand, dense_weight = "dense", None, w
        elif mode == "per_call":
            layer_mode, operand, dense_weight = "per_call", None, w
        else:
            layer_mode = "compiled"
            operand, dense_weight = cache.compress(w, weight_config, digest=w_digest), None
        layer_backend, sweep = backend, None
        if autotune and layer_mode == "compiled":
            sweep = autotune_operand(
                operand,
                sample_cols=observed_cols.get(name, autotune_cols)
                if observed_cols
                else autotune_cols,
                repeats=autotune_repeats,
                backends=autotune_backends,
                exact_only=autotune_exact_only,
            )
            layer_backend = sweep.backend
        plans[name] = LayerPlan(
            name=name,
            kind=_layer_kind(layer),
            mode=layer_mode,
            weight_config=weight_config,
            activation_config=activation_config,
            activation_axis=_activation_axis(layer),
            operand=operand,
            dense_weight=dense_weight,
            cache=cache if cache_activations else None,
            backend=layer_backend,
            autotune=sweep,
            # Recorded at compile time so plan persistence never depends on
            # the operand still being resident in the (LRU-bounded) cache.
            weight_digest=w_digest,
        )
    plan = ExecutionPlan(
        layers=plans,
        transform=transform,
        cache=cache,
        mode=mode,
        build_time=0.0,
    )
    if shards > 1:
        plan_shards(plan, shards)
    plan.build_time = time.perf_counter() - t0
    return plan
