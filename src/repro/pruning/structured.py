"""Hardware-aware structured N:M pruning (the fine-tuned baseline of Fig. 19).

This is the flow the paper argues *against* requiring: pruning directly to
the accelerator's pattern, then fine-tuning to recover.  It exists here as
the comparison point — a structured-pruned model runs natively (losslessly)
on matching structured hardware without TASD.
"""

from __future__ import annotations

import numpy as np

from repro.core.patterns import NMPattern, pattern_mask
from repro.nn.module import Module
from repro.nn.train import Adam, TrainResult, train_classifier

from .magnitude import make_mask_fn
from .targets import gemm_layers

__all__ = ["nm_prune", "nm_prune_and_finetune", "is_nm_pruned"]


def nm_prune(
    model: Module, pattern: NMPattern, include_head: bool = False
) -> dict[str, np.ndarray]:
    """Prune every GEMM layer to ``pattern`` along the reduction axis.

    Keeps the N largest-magnitude weights per M-block of the layer's
    ``weight_matrix()`` rows (the K axis that N:M hardware blocks), zeroing
    the rest in place.  Reduction dims not divisible by M keep their ragged
    tail dense (hardware handles tails as dense blocks).
    """
    masks: dict[str, np.ndarray] = {}
    for name, layer in gemm_layers(model, include_head):
        w = layer.weight_matrix()
        k = w.shape[-1]
        usable = (k // pattern.m) * pattern.m
        mask = np.ones_like(w, dtype=bool)
        if usable:
            mask[:, :usable] = pattern_mask(w[:, :usable], pattern, axis=-1)
        layer.weight.data *= mask.reshape(layer.weight.data.shape)
        masks[name] = mask.reshape(layer.weight.data.shape)
    return masks


def nm_prune_and_finetune(
    model: Module,
    x: np.ndarray,
    y: np.ndarray,
    pattern: NMPattern,
    finetune_epochs: int = 3,
    lr: float = 1e-3,
    seed: int = 0,
) -> tuple[dict[str, np.ndarray], TrainResult]:
    """Structured prune then fine-tune with the N:M mask held fixed."""
    masks = nm_prune(model, pattern)
    result = train_classifier(
        model, x, y,
        epochs=finetune_epochs,
        optimizer=Adam(model, lr=lr),
        seed=seed,
        mask_fn=make_mask_fn(masks),
    )
    return masks, result


def is_nm_pruned(model: Module, pattern: NMPattern, include_head: bool = False) -> bool:
    """True when every GEMM layer satisfies ``pattern`` (ragged tails ignored)."""
    from repro.core.patterns import is_pattern_legal

    for _, layer in gemm_layers(model, include_head):
        w = layer.weight_matrix()
        usable = (w.shape[-1] // pattern.m) * pattern.m
        if usable and not is_pattern_legal(w[:, :usable], pattern, axis=-1):
            return False
    return True
