"""Unstructured magnitude pruning with fine-tuning (Han et al., 2015).

Produces the unstructured-sparse models TASD-W consumes: the SparseZoo
pretrained checkpoints of the paper are replaced by models trained here and
pruned with the same global-magnitude criterion, which yields the per-layer
sparsity spread of Fig. 6 naturally (large mid-network layers prune hardest).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.module import Module
from repro.nn.train import Adam, TrainResult, train_classifier

from .targets import gemm_layers

__all__ = [
    "magnitude_mask",
    "global_magnitude_prune",
    "layerwise_magnitude_prune",
    "apply_masks",
    "make_mask_fn",
    "SparsityReport",
    "sparsity_report",
    "prune_and_finetune",
]


def magnitude_mask(w: np.ndarray, sparsity: float) -> np.ndarray:
    """Boolean keep-mask removing the ``sparsity`` fraction of smallest |w|."""
    if not 0.0 <= sparsity < 1.0:
        raise ValueError(f"sparsity must be in [0, 1), got {sparsity}")
    if sparsity == 0.0:
        return np.ones_like(w, dtype=bool)
    k = int(round(sparsity * w.size))
    if k == 0:
        return np.ones_like(w, dtype=bool)
    threshold = np.partition(np.abs(w), k - 1, axis=None)[k - 1]
    return np.abs(w) > threshold


def global_magnitude_prune(
    model: Module, sparsity: float, include_head: bool = False
) -> dict[str, np.ndarray]:
    """Prune to ``sparsity`` with one global threshold across all GEMM layers.

    Returns the per-layer keep masks (keyed by layer name) and zeroes the
    weights in place.  A single global threshold lets layers with smaller
    weights prune harder — the mechanism behind Fig. 6's per-layer spread.
    """
    if not 0.0 <= sparsity < 1.0:
        raise ValueError(f"sparsity must be in [0, 1), got {sparsity}")
    layers = gemm_layers(model, include_head)
    if not layers:
        raise ValueError("model has no prunable GEMM layers")
    all_mags = np.concatenate([np.abs(layer.weight.data).ravel() for _, layer in layers])
    k = int(round(sparsity * all_mags.size))
    threshold = 0.0 if k == 0 else np.partition(all_mags, k - 1)[k - 1]
    masks: dict[str, np.ndarray] = {}
    for name, layer in layers:
        mask = np.abs(layer.weight.data) > threshold
        layer.weight.data *= mask
        masks[name] = mask
    return masks


def layerwise_magnitude_prune(
    model: Module, sparsity: float | dict[str, float], include_head: bool = False
) -> dict[str, np.ndarray]:
    """Prune each layer to its own target sparsity (uniform or per-layer dict)."""
    masks: dict[str, np.ndarray] = {}
    for name, layer in gemm_layers(model, include_head):
        target = sparsity if isinstance(sparsity, float) else sparsity.get(name, 0.0)
        mask = magnitude_mask(layer.weight.data, target)
        layer.weight.data *= mask
        masks[name] = mask
    return masks


def apply_masks(model: Module, masks: dict[str, np.ndarray]) -> None:
    """Re-zero masked weights (after an optimizer step moved them)."""
    by_name = dict(gemm_layers(model, include_head=True))
    for name, mask in masks.items():
        by_name[name].weight.data *= mask


def make_mask_fn(masks: dict[str, np.ndarray]):
    """A ``mask_fn`` for :func:`repro.nn.train.train_classifier`."""

    def mask_fn(model: Module) -> None:
        apply_masks(model, masks)

    return mask_fn


@dataclass(frozen=True)
class SparsityReport:
    """Per-layer and overall weight sparsity (Fig. 6's left series)."""

    per_layer: dict[str, float]
    overall: float

    def __str__(self) -> str:  # pragma: no cover - formatting
        lines = [f"  {name}: {s:.1%}" for name, s in self.per_layer.items()]
        return f"overall={self.overall:.1%}\n" + "\n".join(lines)


def sparsity_report(model: Module, include_head: bool = False) -> SparsityReport:
    """Measure the sparsity of every prunable layer."""
    per_layer: dict[str, float] = {}
    total_nnz = 0
    total_size = 0
    for name, layer in gemm_layers(model, include_head):
        w = layer.weight.data
        nnz = int(np.count_nonzero(w))
        per_layer[name] = 1.0 - nnz / w.size
        total_nnz += nnz
        total_size += w.size
    overall = 1.0 - total_nnz / total_size if total_size else 0.0
    return SparsityReport(per_layer=per_layer, overall=overall)


def prune_and_finetune(
    model: Module,
    x: np.ndarray,
    y: np.ndarray,
    sparsity: float,
    steps: tuple[float, ...] | None = None,
    finetune_epochs: int = 2,
    lr: float = 1e-3,
    seed: int = 0,
) -> tuple[dict[str, np.ndarray], TrainResult]:
    """Iterative magnitude pruning: prune → fine-tune with frozen zeros, repeated.

    ``steps`` gives the intermediate sparsity schedule (defaults to three
    geometric steps toward the target, the classic recipe); each step
    re-prunes globally and fine-tunes with the mask held.
    """
    if steps is None:
        steps = (sparsity * 0.5, sparsity * 0.8, sparsity)
    masks: dict[str, np.ndarray] = {}
    result = TrainResult()
    for step_sparsity in steps:
        masks = global_magnitude_prune(model, step_sparsity)
        result = train_classifier(
            model, x, y,
            epochs=finetune_epochs,
            optimizer=Adam(model, lr=lr),
            seed=seed,
            mask_fn=make_mask_fn(masks),
        )
    return masks, result
