"""SparseZoo-like per-layer sparsity profiles (Fig. 6's shape).

The hardware experiments need per-layer weight/activation densities for
*full-size* models without instantiating full-size weights.  These profile
generators reproduce the characteristic shape of Fig. 6: weight sparsity
ramps up quickly from a denser first layer to ≈95-98 % for the large
mid/late layers, while activation sparsity oscillates in the 40-80 % band
with depth-dependent drift.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "weight_sparsity_profile",
    "activation_sparsity_profile",
    "gelu_pseudo_density_profile",
]


def weight_sparsity_profile(
    num_layers: int, overall: float = 0.95, first_layer: float = 0.60, seed: int = 0
) -> np.ndarray:
    """Per-layer weight sparsity for a globally pruned model.

    Saturating ramp from ``first_layer`` toward slightly above ``overall``
    (large late layers dominate the global budget so they exceed the mean),
    plus small deterministic jitter.  The parameter-weighted mean is close
    to ``overall`` for typical depth distributions.
    """
    if num_layers < 1:
        raise ValueError("num_layers must be >= 1")
    rng = np.random.default_rng(seed)
    depth = np.linspace(0.0, 1.0, num_layers)
    ceiling = min(0.995, overall + 0.03)
    ramp = first_layer + (ceiling - first_layer) * (1.0 - np.exp(-4.0 * depth))
    jitter = rng.normal(0.0, 0.01, size=num_layers)
    return np.clip(ramp + jitter, 0.0, 0.995)


def activation_sparsity_profile(
    num_layers: int, base: float = 0.55, amplitude: float = 0.15, seed: int = 1
) -> np.ndarray:
    """Per-layer ReLU activation sparsity (Fig. 6's lower series).

    Oscillates around ``base`` — ResNet blocks alternate between high-
    sparsity post-ReLU maps and denser post-add maps — with mild growth in
    later layers, matching the measured pattern.
    """
    rng = np.random.default_rng(seed)
    depth = np.linspace(0.0, 1.0, num_layers)
    wave = amplitude * np.sin(np.pi * 3.0 * depth)
    drift = 0.10 * depth
    jitter = rng.normal(0.0, 0.03, size=num_layers)
    return np.clip(base + wave + drift + jitter, 0.05, 0.95)


def gelu_pseudo_density_profile(
    num_layers: int, base: float = 0.38, seed: int = 2
) -> np.ndarray:
    """Per-layer pseudo-density (99 % magnitude share) for GELU networks.

    GELU activations are dense but magnitude-skewed; measured pseudo-density
    for transformer MLP inputs sits in the 0.3-0.6 band.  Used where the
    full-size workload suite needs TASD-A selection statistics.
    """
    rng = np.random.default_rng(seed)
    depth = np.linspace(0.0, 1.0, num_layers)
    drift = 0.10 * np.cos(np.pi * 2.0 * depth)
    jitter = rng.normal(0.0, 0.03, size=num_layers)
    return np.clip(base + drift + jitter, 0.15, 0.9)
