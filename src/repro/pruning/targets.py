"""Discovery of prunable / TASD-able layers in a model.

The paper applies TASD only to CONV and FC layers (Section 4.1): they
dominate compute and lower to GEMM.  Depthwise convolutions and embeddings
are excluded, as are classifier heads by default (pruning them is
disproportionately damaging — standard practice the paper's SparseZoo
models follow too).
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Conv2d, Linear, _GemmLayer
from repro.nn.module import Module

__all__ = ["gemm_layers", "prunable_weights", "classifier_head_names"]


def gemm_layers(
    model: Module, include_head: bool = False
) -> list[tuple[str, _GemmLayer]]:
    """All (name, layer) GEMM layers of ``model`` in forward order.

    ``include_head=False`` drops the final classifier Linear (matching how
    the paper's pretrained sparse models keep heads dense).
    """
    layers = [
        (name, mod)
        for name, mod in model.named_modules()
        if isinstance(mod, (Linear, Conv2d))
    ]
    if not include_head and layers and isinstance(layers[-1][1], Linear):
        # The trailing Linear of a classifier is its head; every model in the
        # zoo ends with one, and pruning/decomposing it is disproportionately
        # damaging (SparseZoo models keep heads dense too).
        layers = layers[:-1]
    return layers


def classifier_head_names() -> frozenset[str]:
    """Attribute names treated as classifier heads across the model zoo."""
    return frozenset({"head", "classifier", "fc"})


def prunable_weights(model: Module, include_head: bool = False) -> list[tuple[str, np.ndarray]]:
    """(name, weight-matrix) pairs for every prunable GEMM layer."""
    return [(name, layer.weight_matrix()) for name, layer in gemm_layers(model, include_head)]
