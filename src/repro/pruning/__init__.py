"""Sparsity induction: unstructured magnitude pruning, N:M pruning, profiles."""

from .magnitude import (
    SparsityReport,
    apply_masks,
    global_magnitude_prune,
    layerwise_magnitude_prune,
    magnitude_mask,
    make_mask_fn,
    prune_and_finetune,
    sparsity_report,
)
from .profiles import (
    activation_sparsity_profile,
    gelu_pseudo_density_profile,
    weight_sparsity_profile,
)
from .structured import is_nm_pruned, nm_prune, nm_prune_and_finetune
from .targets import classifier_head_names, gemm_layers, prunable_weights

__all__ = [
    "magnitude_mask",
    "global_magnitude_prune",
    "layerwise_magnitude_prune",
    "apply_masks",
    "make_mask_fn",
    "prune_and_finetune",
    "sparsity_report",
    "SparsityReport",
    "nm_prune",
    "nm_prune_and_finetune",
    "is_nm_pruned",
    "gemm_layers",
    "prunable_weights",
    "classifier_head_names",
    "weight_sparsity_profile",
    "activation_sparsity_profile",
    "gelu_pseudo_density_profile",
]
