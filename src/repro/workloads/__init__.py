"""Workload definitions: full-size layer shapes and the evaluation suite."""

from .shapes import (
    MODEL_SHAPE_BUILDERS,
    LayerShape,
    bert_layers,
    convnext_layers,
    resnet_layers,
    vgg_layers,
    vit_layers,
)
from .suite import (
    DROP_CAP_ACTIVATIONS,
    DROP_CAP_WEIGHTS,
    PAPER_WORKLOADS,
    Workload,
    WorkloadLayer,
    build_layer_specs,
    dense_bert,
    dense_resnet50,
    representative_layers,
    select_config_by_drop_cap,
    sparse_bert,
    sparse_resnet50,
)

__all__ = [
    "LayerShape",
    "resnet_layers",
    "vgg_layers",
    "bert_layers",
    "vit_layers",
    "convnext_layers",
    "MODEL_SHAPE_BUILDERS",
    "Workload",
    "WorkloadLayer",
    "dense_resnet50",
    "sparse_resnet50",
    "dense_bert",
    "sparse_bert",
    "PAPER_WORKLOADS",
    "select_config_by_drop_cap",
    "build_layer_specs",
    "representative_layers",
    "DROP_CAP_WEIGHTS",
    "DROP_CAP_ACTIVATIONS",
]
