"""Evaluation workloads: the four dense/sparse DNNs of Section 5 and the
per-layer TASD configuration pipeline that feeds the hardware models.

Per the DESIGN.md split: *accuracy* experiments run the real TASDER searches
on trained scaled models; *hardware* experiments (Figs. 12/13/15/19) run on
full-size layer shapes with per-layer densities from measured-shape profiles
and TASD configs selected by the same decision rule TASDER uses, evaluated
through the closed-form expected-drop model (property-tested against the
empirical decomposition).  The accuracy gate becomes a per-layer cap on the
expected dropped-non-zero fraction, calibrated once (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.analysis import series_expected_dropped_fraction
from repro.core.series import DENSE_CONFIG, TASDConfig
from repro.hw.accelerator import LayerSpec
from repro.hw.designs import DesignPoint
from repro.pruning.profiles import (
    activation_sparsity_profile,
    gelu_pseudo_density_profile,
    weight_sparsity_profile,
)
from repro.tasder.config import HardwareMenu

from .shapes import LayerShape, bert_layers, resnet_layers

__all__ = [
    "WorkloadLayer",
    "Workload",
    "dense_resnet50",
    "sparse_resnet50",
    "dense_bert",
    "sparse_bert",
    "PAPER_WORKLOADS",
    "select_config_by_drop_cap",
    "build_layer_specs",
    "representative_layers",
    "DROP_CAP_WEIGHTS",
    "DROP_CAP_ACTIVATIONS",
]

# Per-layer expected dropped-non-zero caps standing in for the accuracy gate
# (calibrated against the scaled-model TASDER runs; see EXPERIMENTS.md).
# Pseudo-density "non-zeros" carry far less magnitude than real ones (they
# are defined by a 99 %-of-magnitude cut), so GELU workloads tolerate a
# larger cap — mirroring the paper's finding that pseudo-density selection
# still meets the accuracy gate on GELU networks.
DROP_CAP_WEIGHTS = 0.05
DROP_CAP_ACTIVATIONS = 0.05
DROP_CAP_PSEUDO = 0.15


@dataclass(frozen=True)
class WorkloadLayer:
    """A full-size layer plus its operand densities.

    ``activation_density`` is the *real* zero fraction complement — what
    unstructured hardware can skip and gating can exploit.  For GELU/Swish
    networks it is 1.0 (no exact zeros); the TASD-A selection statistic then
    comes from ``activation_stat_density`` (the pseudo-density of Section
    4.3).  ReLU networks have both equal.
    """

    shape: LayerShape
    weight_density: float
    activation_density: float
    activation_stat_density: float | None = None

    @property
    def name(self) -> str:
        return self.shape.name

    @property
    def stat_density(self) -> float:
        return (
            self.activation_stat_density
            if self.activation_stat_density is not None
            else self.activation_density
        )


@dataclass(frozen=True)
class Workload:
    """One evaluated DNN: layers, densities, and which side TASD targets.

    ``tasd_side`` follows Section 5.1: sparse-weight models use TASD-W,
    dense-weight models use TASD-A (never both on one GEMM).
    """

    name: str
    layers: tuple[WorkloadLayer, ...]
    tasd_side: str  # "weights" | "activations"
    activation_kind: str  # "relu" (real zeros) | "gelu" (pseudo-density)

    @property
    def total_macs(self) -> int:
        return sum(l.shape.macs for l in self.layers)


# --------------------------------------------------------------------------
# The four workloads of Fig. 12 (Table 4's rows)
# --------------------------------------------------------------------------
def dense_resnet50(batch: int = 1) -> Workload:
    """Dense ResNet-50: dense weights, ReLU-sparse activations (~40-75 %)."""
    shapes = resnet_layers(50, batch=batch)
    act = 1.0 - activation_sparsity_profile(len(shapes), seed=1)
    layers = tuple(
        WorkloadLayer(s, weight_density=1.0, activation_density=float(a))
        for s, a in zip(shapes, act)
    )
    return Workload("Dense ResNet50", layers, tasd_side="activations", activation_kind="relu")


def sparse_resnet50(batch: int = 1, overall_sparsity: float = 0.95) -> Workload:
    """95 % unstructured sparse ResNet-50 (the SparseZoo model of Fig. 6)."""
    shapes = resnet_layers(50, batch=batch)
    w = 1.0 - weight_sparsity_profile(len(shapes), overall=overall_sparsity, seed=0)
    act = 1.0 - activation_sparsity_profile(len(shapes), seed=1)
    layers = tuple(
        WorkloadLayer(s, weight_density=float(wd), activation_density=float(a))
        for s, wd, a in zip(shapes, w, act)
    )
    return Workload("Sparse ResNet50", layers, tasd_side="weights", activation_kind="relu")


def dense_bert(batch: int = 1) -> Workload:
    """Dense BERT-base: dense weights, dense GELU activations (pseudo-density)."""
    shapes = bert_layers(batch=batch)
    pseudo = gelu_pseudo_density_profile(len(shapes), seed=2)
    layers = tuple(
        WorkloadLayer(
            s, weight_density=1.0, activation_density=1.0, activation_stat_density=float(p)
        )
        for s, p in zip(shapes, pseudo)
    )
    return Workload("Dense BERT", layers, tasd_side="activations", activation_kind="gelu")


def sparse_bert(batch: int = 1, overall_sparsity: float = 0.90) -> Workload:
    """90 % unstructured sparse BERT: sparse weights, dense GELU activations."""
    shapes = bert_layers(batch=batch)
    w = 1.0 - weight_sparsity_profile(len(shapes), overall=overall_sparsity, first_layer=0.7, seed=3)
    pseudo = gelu_pseudo_density_profile(len(shapes), seed=2)
    layers = tuple(
        WorkloadLayer(
            s, weight_density=float(wd), activation_density=1.0,
            activation_stat_density=float(p),
        )
        for s, wd, p in zip(shapes, w, pseudo)
    )
    return Workload("Sparse BERT", layers, tasd_side="weights", activation_kind="gelu")


def PAPER_WORKLOADS(batch: int = 1) -> list[Workload]:
    """The Fig. 12 workload list, in the paper's order."""
    return [dense_resnet50(batch), dense_bert(batch), sparse_resnet50(batch), sparse_bert(batch)]


# --------------------------------------------------------------------------
# Config selection (the TASDER decision rule over the closed-form model)
# --------------------------------------------------------------------------
def select_config_by_drop_cap(
    density: float, menu: HardwareMenu, drop_cap: float
) -> TASDConfig:
    """Sparsest admissible config whose expected dropped-nnz stays in cap.

    This is the greedy/α selection collapsed to its fixed point: among menu
    configs whose expected dropped-non-zero fraction (binomial model) is
    within ``drop_cap``, take the one with the lowest density (max compute
    saved).  Dense always qualifies (zero drops).
    """
    best = DENSE_CONFIG
    best_density = 1.0
    for config in menu.configs(include_dense=False):
        if series_expected_dropped_fraction(density, config) <= drop_cap:
            if config.density < best_density:
                best = config
                best_density = config.density
    return best


def _tasd_density(layer: WorkloadLayer, workload: Workload) -> float:
    """The density statistic the selection rule sees for this layer."""
    if workload.tasd_side == "weights":
        return layer.weight_density
    return layer.stat_density  # ReLU sparsity or GELU pseudo-density


def build_layer_specs(
    workload: Workload,
    design: DesignPoint,
    drop_cap_weights: float = DROP_CAP_WEIGHTS,
    drop_cap_activations: float = DROP_CAP_ACTIVATIONS,
    drop_cap_pseudo: float = DROP_CAP_PSEUDO,
    use_tasder: bool = True,
    native_only: bool = False,
) -> list[LayerSpec]:
    """Orient each workload layer into the design's A/B operands with configs.

    - TASD-W: A = weights (out x red), B = activations (red x spatial).
    - TASD-A: A = activations (spatial x red), B = weights (red x out);
      requires the design's dynamic-decomposition (TASD unit) support.
    - ``use_tasder=False`` leaves every layer dense (the plain-VEGETA
      ablation of Fig. 19); ``native_only=True`` admits only 1-term native
      patterns (a structured accelerator without the TASD extension).
    """
    specs: list[LayerSpec] = []
    menu = design.menu
    for layer in workload.layers:
        weights_side = workload.tasd_side == "weights"
        if weights_side:
            m, k, n = layer.shape.out_features, layer.shape.reduction, layer.shape.spatial
            a_density, b_density = layer.weight_density, layer.activation_density
            drop_cap = drop_cap_weights
            a_dynamic = False
        else:
            m, k, n = layer.shape.spatial, layer.shape.reduction, layer.shape.out_features
            a_density, b_density = layer.activation_density, layer.weight_density
            drop_cap = (
                drop_cap_pseudo if workload.activation_kind == "gelu" else drop_cap_activations
            )
            a_dynamic = True

        config = DENSE_CONFIG
        can_decompose = menu is not None and use_tasder and (
            weights_side or menu.dynamic_decomposition
        )
        if can_decompose:
            effective_menu = menu
            if native_only and menu is not None:
                effective_menu = HardwareMenu(
                    menu.name, menu.native_patterns, max_terms=1,
                    dynamic_decomposition=menu.dynamic_decomposition,
                )
            config = select_config_by_drop_cap(_tasd_density(layer, workload), effective_menu, drop_cap)
        specs.append(
            LayerSpec(
                name=layer.name,
                m=m, k=k, n=n,
                a_density=a_density,
                b_density=b_density,
                a_config=config,
                a_dynamic=a_dynamic,
            )
        )
    return specs


def representative_layers(workload: Workload) -> dict[str, WorkloadLayer]:
    """Table 4's L1/L2/L3 representative layers of a workload."""
    targets = {
        "resnet": {
            "L1": (784, 1152, 128),
            "L2": (3136, 576, 64),
            "L3": (196, 2304, 256),
        },
        "bert": {
            "L1": (128, 768, 768),
            "L2": (128, 768, 3072),
            "L3": (128, 3072, 768),
        },
    }["resnet" if "ResNet" in workload.name else "bert"]
    found: dict[str, WorkloadLayer] = {}
    for label, (sp, red, out) in targets.items():
        for layer in workload.layers:
            if (layer.shape.spatial, layer.shape.reduction, layer.shape.out_features) == (sp, red, out):
                found[label] = layer
                break
    return found
