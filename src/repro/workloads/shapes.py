"""Full-size layer shapes, derived analytically (no weights instantiated).

The hardware experiments run on the paper's actual layer dimensions —
ResNet-50 at 224x224, BERT-base at sequence length 128, etc. — which only
requires shape arithmetic, not full-size tensors.  Table 4's representative
layers fall straight out of these derivations (verified in tests):

  Dense/Sparse RN50  L1: M784-N128-K1152   (stage-3 3x3 conv @ 28x28)
                     L2: M3136-N64-K576    (stage-2 3x3 conv @ 56x56)
                     L3: M196-K2304-N256   (stage-4 3x3 conv @ 14x14)
  Dense/Sparse BERT  L1: M768-N128-K768    (attention projection)
                     L2: M3072-N128-K768   (MLP FC1)
                     L3: M768-N128-K3072   (MLP FC2)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nn.im2col import conv_out_size

__all__ = [
    "LayerShape",
    "resnet_layers",
    "vgg_layers",
    "bert_layers",
    "vit_layers",
    "convnext_layers",
    "MODEL_SHAPE_BUILDERS",
]


@dataclass(frozen=True)
class LayerShape:
    """One CONV/FC layer lowered to GEMM.

    ``spatial`` — output positions x batch (im2col rows / token count);
    ``reduction`` — the contracted K dimension; ``out_features`` — output
    channels/features.  Orientation into the accelerator's A/B operands
    happens per experiment (TASD-W: A = weights (out x red); TASD-A:
    A = activations (spatial x red)).
    """

    name: str
    spatial: int
    reduction: int
    out_features: int
    kind: str = "conv"  # conv | fc
    kernel_area: int = 1  # kh*kw for convs: im2col reads each input this often

    @property
    def macs(self) -> int:
        return self.spatial * self.reduction * self.out_features

    @property
    def weight_size(self) -> int:
        return self.reduction * self.out_features


# --------------------------------------------------------------------------
# ResNet
# --------------------------------------------------------------------------
_RESNET_STAGES = {
    18: ([2, 2, 2, 2], "basic"),
    34: ([3, 4, 6, 3], "basic"),
    50: ([3, 4, 6, 3], "bottleneck"),
    101: ([3, 4, 23, 3], "bottleneck"),
}


def resnet_layers(depth: int = 50, image: int = 224, batch: int = 1) -> list[LayerShape]:
    """All CONV/FC layers of a full-size ImageNet ResNet."""
    if depth not in _RESNET_STAGES:
        raise ValueError(f"unsupported ResNet depth {depth}")
    stage_blocks, block_kind = _RESNET_STAGES[depth]
    layers: list[LayerShape] = []
    size = conv_out_size(image, 7, 2, 3)  # stem
    layers.append(LayerShape("conv1", batch * size * size, 3 * 49, 64, kernel_area=49))
    size = conv_out_size(size, 3, 2, 1)  # maxpool
    in_ch = 64
    width = 64
    expansion = 4 if block_kind == "bottleneck" else 1
    for stage_idx, n_blocks in enumerate(stage_blocks):
        for block_idx in range(n_blocks):
            stride = 2 if (stage_idx > 0 and block_idx == 0) else 1
            out_size = size // stride
            prefix = f"layer{stage_idx + 1}.{block_idx}"
            sp = batch * out_size * out_size
            if block_kind == "bottleneck":
                layers.append(LayerShape(f"{prefix}.conv1", batch * size * size, in_ch, width))
                layers.append(LayerShape(f"{prefix}.conv2", sp, width * 9, width, kernel_area=9))
                layers.append(LayerShape(f"{prefix}.conv3", sp, width, width * expansion))
            else:
                layers.append(LayerShape(f"{prefix}.conv1", sp, in_ch * 9, width, kernel_area=9))
                layers.append(LayerShape(f"{prefix}.conv2", sp, width * 9, width, kernel_area=9))
            if stride != 1 or in_ch != width * expansion:
                layers.append(LayerShape(f"{prefix}.downsample", sp, in_ch, width * expansion))
            in_ch = width * expansion
            size = out_size
        width *= 2
    layers.append(LayerShape("fc", batch, in_ch, 1000, kind="fc"))
    return layers


# --------------------------------------------------------------------------
# VGG
# --------------------------------------------------------------------------
_VGG_PLANS = {
    11: [64, "M", 128, "M", 256, 256, "M", 512, 512, "M", 512, 512, "M"],
    16: [64, 64, "M", 128, 128, "M", 256, 256, 256, "M", 512, 512, 512, "M", 512, 512, 512, "M"],
}


def vgg_layers(depth: int = 16, image: int = 224, batch: int = 1) -> list[LayerShape]:
    """All CONV/FC layers of a full-size VGG (classifier folded to one FC)."""
    if depth not in _VGG_PLANS:
        raise ValueError(f"unsupported VGG depth {depth}")
    layers: list[LayerShape] = []
    size = image
    in_ch = 3
    idx = 0
    for item in _VGG_PLANS[depth]:
        if item == "M":
            size //= 2
            continue
        layers.append(LayerShape(f"conv{idx}", batch * size * size, in_ch * 9, int(item), kernel_area=9))
        in_ch = int(item)
        idx += 1
    layers.append(LayerShape("fc", batch, in_ch * size * size, 4096, kind="fc"))
    layers.append(LayerShape("fc2", batch, 4096, 1000, kind="fc"))
    return layers


# --------------------------------------------------------------------------
# BERT
# --------------------------------------------------------------------------
def bert_layers(
    num_layers: int = 12, dim: int = 768, mlp_ratio: int = 4, seq: int = 128, batch: int = 1
) -> list[LayerShape]:
    """FC layers of a BERT-base encoder (Q/K/V, attention out, MLP FCs)."""
    layers: list[LayerShape] = []
    tokens = batch * seq
    for i in range(num_layers):
        p = f"encoder.{i}"
        for proj in ("q", "k", "v"):
            layers.append(LayerShape(f"{p}.attn.{proj}", tokens, dim, dim, kind="fc"))
        layers.append(LayerShape(f"{p}.attn.out", tokens, dim, dim, kind="fc"))
        layers.append(LayerShape(f"{p}.mlp.fc1", tokens, dim, dim * mlp_ratio, kind="fc"))
        layers.append(LayerShape(f"{p}.mlp.fc2", tokens, dim * mlp_ratio, dim, kind="fc"))
    return layers


# --------------------------------------------------------------------------
# ViT-B/16
# --------------------------------------------------------------------------
def vit_layers(
    image: int = 224, patch: int = 16, dim: int = 768, num_layers: int = 12,
    mlp_ratio: int = 4, batch: int = 1,
) -> list[LayerShape]:
    """FC layers of ViT-B/16 (patch embed + encoder blocks)."""
    tokens = batch * (image // patch) ** 2
    layers = [LayerShape("patch_embed", tokens, 3 * patch * patch, dim, kind="fc")]
    layers.extend(bert_layers(num_layers=num_layers, dim=dim, mlp_ratio=mlp_ratio, seq=tokens, batch=1))
    return layers


# --------------------------------------------------------------------------
# ConvNeXt-Tiny
# --------------------------------------------------------------------------
def convnext_layers(image: int = 224, batch: int = 1) -> list[LayerShape]:
    """CONV/FC layers of ConvNeXt-T ([3,3,9,3], widths 96..768).

    Depthwise 7x7 convs are excluded (not TASD targets, negligible MACs);
    each block contributes its two pointwise MLPs.
    """
    depths = (3, 3, 9, 3)
    widths = (96, 192, 384, 768)
    layers: list[LayerShape] = []
    size = image // 4
    layers.append(LayerShape("stem", batch * size * size, 3 * 16, widths[0]))
    for stage, (depth, width) in enumerate(zip(depths, widths)):
        if stage > 0:
            size //= 2
            layers.append(
                LayerShape(f"downsample{stage}", batch * size * size, widths[stage - 1] * 4, width)
            )
        sp = batch * size * size
        for b in range(depth):
            layers.append(LayerShape(f"stage{stage}.{b}.pw1", sp, width, 4 * width, kind="fc"))
            layers.append(LayerShape(f"stage{stage}.{b}.pw2", sp, 4 * width, width, kind="fc"))
    layers.append(LayerShape("head", batch, widths[-1], 1000, kind="fc"))
    return layers


MODEL_SHAPE_BUILDERS = {
    "resnet18": lambda **kw: resnet_layers(18, **kw),
    "resnet34": lambda **kw: resnet_layers(34, **kw),
    "resnet50": lambda **kw: resnet_layers(50, **kw),
    "resnet101": lambda **kw: resnet_layers(101, **kw),
    "vgg11": lambda **kw: vgg_layers(11, **kw),
    "vgg16": lambda **kw: vgg_layers(16, **kw),
    "bert_base": lambda **kw: bert_layers(**kw),
    "vit_b16": lambda **kw: vit_layers(**kw),
    "convnext_tiny": lambda **kw: convnext_layers(**kw),
}
