"""The Fig. 11 decomposition-aware schedule, simulated tile by tile.

Fig. 11 maps an approximated GEMM (A decomposed as 4:8 + 1:8) onto four
TTCs across timesteps: every engine owns one A-row stripe, B column-blocks
are broadcast, C tiles stay resident per engine, and *consecutive timesteps
run successive TASD terms against the same B/C tiles* — the reuse that makes
multi-term TASD cheap.

This module builds that schedule explicitly and replays it, counting per-
tile fetches so the reuse claims of Section 4.4 become checkable facts:

* B tiles are fetched from L2 once per (B-block x term-group), then reused
  across the engines' timestep pair;
* C tiles are written back exactly once, at the very end (the "swap C tiles
  at the very end" rule);
* A term-tiles stream in exactly once each.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.series import TASDConfig

__all__ = ["ScheduleStep", "TileSchedule", "build_fig11_schedule", "replay_counts"]


@dataclass(frozen=True)
class ScheduleStep:
    """One (timestep, engine) cell of the Fig. 11 mapping."""

    timestep: int
    engine: int
    a_stripe: int  # A row-stripe index (engine-owned)
    term: int  # TASD term index executed this timestep
    b_block: int  # B column-block index
    c_tile: int  # C tile accumulated into (== a_stripe x b_block flattened)


@dataclass
class TileSchedule:
    """A full schedule plus its static structure."""

    steps: list[ScheduleStep] = field(default_factory=list)
    num_engines: int = 4
    num_terms: int = 2
    a_stripes: int = 4
    b_blocks: int = 2

    @property
    def num_timesteps(self) -> int:
        return max(s.timestep for s in self.steps) + 1 if self.steps else 0


def build_fig11_schedule(
    config: TASDConfig,
    a_stripes: int = 4,
    b_blocks: int = 2,
    num_engines: int = 4,
) -> TileSchedule:
    """Construct the Fig. 11 mapping for an arbitrary TASD series.

    Timestep layout generalises the figure: for every B column-block, run
    the series terms back-to-back (term-major) so B and C stay resident;
    engines process their own A stripe in parallel.  With 2 terms and 2
    B-blocks this is exactly the paper's four timesteps.
    """
    num_terms = max(1, config.order)
    if a_stripes % num_engines:
        raise ValueError("a_stripes must be a multiple of num_engines")
    schedule = TileSchedule(
        num_engines=num_engines, num_terms=num_terms,
        a_stripes=a_stripes, b_blocks=b_blocks,
    )
    timestep = 0
    stripe_rounds = a_stripes // num_engines
    for b_block in range(b_blocks):
        for term in range(num_terms):
            for round_idx in range(stripe_rounds):
                for engine in range(num_engines):
                    stripe = round_idx * num_engines + engine
                    schedule.steps.append(
                        ScheduleStep(
                            timestep=timestep,
                            engine=engine,
                            a_stripe=stripe,
                            term=term,
                            b_block=b_block,
                            c_tile=stripe * b_blocks + b_block,
                        )
                    )
                timestep += 1
    return schedule


@dataclass(frozen=True)
class ReplayCounts:
    """Fetch/writeback counts from replaying a schedule with tile caches."""

    a_fetches: int
    b_l2_fetches: int
    b_reuse_hits: int
    c_writebacks: int
    c_spills: int  # C tiles evicted before their accumulation finished


def replay_counts(schedule: TileSchedule) -> ReplayCounts:
    """Replay the schedule against single-slot B and per-engine C residency.

    Models the paper's storage discipline: each engine holds one C tile in
    L1 (switching C tiles mid-accumulation would spill partial sums), and
    the shared L2 holds one B block at a time (a new block evicts the old).
    """
    a_fetches = 0
    b_l2_fetches = 0
    b_reuse_hits = 0
    c_writebacks = 0
    c_spills = 0
    resident_b: int | None = None
    engine_c: dict[int, int | None] = {e: None for e in range(schedule.num_engines)}
    contributions: dict[int, int] = {}
    c_done: set[int] = set()
    # Steps grouped by timestep, replayed in order.
    by_time: dict[int, list[ScheduleStep]] = {}
    for step in schedule.steps:
        by_time.setdefault(step.timestep, []).append(step)
    for t in sorted(by_time):
        for step in by_time[t]:
            a_fetches += 1  # term stripes always stream in
            if resident_b != step.b_block:
                b_l2_fetches += 1
                resident_b = step.b_block
            else:
                b_reuse_hits += 1
            held = engine_c[step.engine]
            if held is not None and held != step.c_tile:
                if held not in c_done:
                    c_spills += 1
                c_writebacks += 1
            engine_c[step.engine] = step.c_tile
            contributions[step.c_tile] = contributions.get(step.c_tile, 0) + 1
            if contributions[step.c_tile] == schedule.num_terms:
                c_done.add(step.c_tile)
    # Flush whatever each engine still holds (now complete).
    for held in engine_c.values():
        if held is not None:
            c_writebacks += 1
    return ReplayCounts(
        a_fetches=a_fetches,
        b_l2_fetches=b_l2_fetches,
        b_reuse_hits=b_reuse_hits,
        c_writebacks=c_writebacks,
        c_spills=c_spills,
    )
