"""EDP / speed-up metrics and normalisation helpers (Figs. 12, 13, 19)."""

from __future__ import annotations

import math
from dataclasses import dataclass

from .accelerator import NetworkResult

__all__ = ["NormalizedMetrics", "normalize", "geomean"]


@dataclass(frozen=True)
class NormalizedMetrics:
    """One design's metrics relative to a baseline (usually dense TC)."""

    design: str
    edp: float
    latency: float
    energy: float

    @property
    def edp_improvement(self) -> float:
        """'Improves EDP by X %' in the paper's phrasing (1 - normalized)."""
        return 1.0 - self.edp


def normalize(result: NetworkResult, baseline: NetworkResult) -> NormalizedMetrics:
    """Normalise a design's network result against the baseline's."""
    if baseline.cycles <= 0 or baseline.energy <= 0:
        raise ValueError("baseline has non-positive cycles/energy")
    return NormalizedMetrics(
        design=result.design,
        edp=result.edp / baseline.edp,
        latency=result.cycles / baseline.cycles,
        energy=result.energy / baseline.energy,
    )


def geomean(values: list[float]) -> float:
    """Geometric mean (the paper's cross-workload aggregate)."""
    if not values:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
