"""Design-space exploration over structured-sparsity support.

Section 5.2's observation — "the extra flexibility (increasing M) in the
baseline accelerator increases the benefit" — generalises to a design
space: block size M, the set of native patterns, and the TASD term budget.
This module sweeps that space with the analytical model and the workload
suite, quantifying how much each axis of flexibility buys.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.patterns import NMPattern
from repro.tasder.config import HardwareMenu

from .accelerator import TTC, DenseTC
from .designs import DesignPoint
from .metrics import geomean

__all__ = ["DesignSweepPoint", "sweep_term_budget", "sweep_block_size", "power_of_two_menu"]


def power_of_two_menu(m: int, max_terms: int, name: str | None = None) -> HardwareMenu:
    """A VEGETA-style menu with native patterns {1, 2, 4, ..., m/2} : m."""
    patterns = []
    n = 1
    while n < m:
        patterns.append(NMPattern(n, m))
        n *= 2
    return HardwareMenu(
        name or f"TTC-N:{m}-{max_terms}T",
        tuple(patterns),
        max_terms=max_terms,
        dynamic_decomposition=True,
    )


@dataclass(frozen=True)
class DesignSweepPoint:
    """One evaluated design with its cross-workload geomean EDP."""

    label: str
    block_size: int
    max_terms: int
    menu_size: int
    geomean_edp: float


def _evaluate(menu: HardwareMenu) -> float:
    from repro.workloads import PAPER_WORKLOADS, build_layer_specs

    design = DesignPoint(menu.name, TTC(name=menu.name), menu)
    tc = DesignPoint("TC", DenseTC(), None)
    edps = []
    for wl in PAPER_WORKLOADS():
        base = tc.model.run_network(build_layer_specs(wl, tc, use_tasder=False))
        result = design.model.run_network(build_layer_specs(wl, design))
        edps.append(result.edp / base.edp)
    return geomean(edps)


def sweep_term_budget(m: int = 8, budgets: tuple[int, ...] = (1, 2, 3)) -> list[DesignSweepPoint]:
    """How much does each extra TASD term buy, at fixed block size?"""
    points = []
    for budget in budgets:
        menu = power_of_two_menu(m, budget)
        points.append(
            DesignSweepPoint(
                label=menu.name,
                block_size=m,
                max_terms=budget,
                menu_size=len(menu.menu()),
                geomean_edp=_evaluate(menu),
            )
        )
    return points


def sweep_block_size(ms: tuple[int, ...] = (4, 8, 16), max_terms: int = 2) -> list[DesignSweepPoint]:
    """How much does a larger block size buy, at a fixed term budget?"""
    points = []
    for m in ms:
        menu = power_of_two_menu(m, max_terms)
        points.append(
            DesignSweepPoint(
                label=menu.name,
                block_size=m,
                max_terms=max_terms,
                menu_size=len(menu.menu()),
                geomean_edp=_evaluate(menu),
            )
        )
    return points
