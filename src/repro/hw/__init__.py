"""Sparseloop-style analytical accelerator models (Section 5.1's substrate)."""

from .accelerator import (
    DSTC,
    TTC,
    AcceleratorModel,
    DenseTC,
    LayerResult,
    LayerSpec,
    NetworkResult,
    StructuredSparseAccelerator,
)
from .arch import DEFAULT_ARCH, ArchConfig, Bandwidth, EnergyTable
from .dataflow import AccessCounts, TileChoice, choose_tiles, count_accesses
from .designs import TABLE3_DESIGNS, DesignPoint, build_model, design_by_name
from .mapper import MappingCandidate, best_tiles, run_layer_with_tiles, search_mapping
from .metrics import NormalizedMetrics, geomean, normalize
from .schedule import ScheduleStep, TileSchedule, build_fig11_schedule, replay_counts
from .tasd_unit import (
    TASDUnitSimResult,
    min_units_no_stall,
    service_cycles,
    simulate_tasd_units,
)

__all__ = [
    "ArchConfig",
    "EnergyTable",
    "Bandwidth",
    "DEFAULT_ARCH",
    "AccessCounts",
    "TileChoice",
    "choose_tiles",
    "count_accesses",
    "LayerSpec",
    "LayerResult",
    "NetworkResult",
    "AcceleratorModel",
    "DenseTC",
    "DSTC",
    "StructuredSparseAccelerator",
    "TTC",
    "DesignPoint",
    "build_model",
    "design_by_name",
    "TABLE3_DESIGNS",
    "normalize",
    "NormalizedMetrics",
    "geomean",
    "service_cycles",
    "simulate_tasd_units",
    "min_units_no_stall",
    "TASDUnitSimResult",
    "MappingCandidate",
    "search_mapping",
    "best_tiles",
    "run_layer_with_tiles",
    "TileSchedule",
    "ScheduleStep",
    "build_fig11_schedule",
    "replay_counts",
]
