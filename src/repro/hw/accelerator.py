"""Analytical accelerator models: dense TC, DSTC, structured (VEGETA/STC), TTC.

Each model maps one GEMM layer — dimensions, operand densities, and (for
structured designs) the TASD series of the decomposed operand — to cycles
and a per-component energy breakdown, following the Sparseloop methodology
the paper uses: effectual-compute scaling plus data-movement counting per
memory level, with a bandwidth roofline on cycles.

Operand convention: A (M x K) is the operand TASD decomposes; B (K x N) is
the other operand (its density only gates MAC energy on designs that
support gating).  Workload builders orient weights/activations into A/B per
experiment (TASD-W: A = weights; TASD-A: A = activations).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.series import DENSE_CONFIG, TASDConfig

from .arch import ArchConfig, DEFAULT_ARCH
from .dataflow import AccessCounts, choose_tiles, count_accesses

__all__ = [
    "LayerSpec",
    "LayerResult",
    "NetworkResult",
    "AcceleratorModel",
    "DenseTC",
    "DSTC",
    "StructuredSparseAccelerator",
    "TTC",
]


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


@dataclass(frozen=True)
class LayerSpec:
    """One GEMM layer of a workload.

    ``a_config`` is the TASD series structured designs run A with (dense
    config = no decomposition); unstructured/dense designs ignore it and see
    only the raw densities.  ``a_dynamic`` marks A as runtime-generated
    activations (TASD-A), which costs TASD-unit energy on TTC designs.
    """

    name: str
    m: int
    k: int
    n: int
    a_density: float = 1.0
    b_density: float = 1.0
    a_config: TASDConfig = DENSE_CONFIG
    a_dynamic: bool = False

    @property
    def dense_macs(self) -> int:
        return self.m * self.k * self.n


@dataclass
class LayerResult:
    """Cycles + energy of one layer on one design."""

    name: str
    cycles: float
    energy_breakdown: dict[str, float]  # component -> pJ
    effectual_macs: float
    dense_macs: int
    compute_cycles: float = 0.0
    memory_cycles: float = 0.0

    @property
    def energy(self) -> float:
        return sum(self.energy_breakdown.values())

    @property
    def edp(self) -> float:
        return self.energy * self.cycles


@dataclass
class NetworkResult:
    """Aggregate over a network's layers (the paper's 'Overall' bars)."""

    design: str
    layers: list[LayerResult] = field(default_factory=list)

    @property
    def cycles(self) -> float:
        return sum(r.cycles for r in self.layers)

    @property
    def energy(self) -> float:
        return sum(r.energy for r in self.layers)

    @property
    def edp(self) -> float:
        return self.energy * self.cycles

    def energy_by_component(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for r in self.layers:
            for comp, pj in r.energy_breakdown.items():
                out[comp] = out.get(comp, 0.0) + pj
        return out


class AcceleratorModel:
    """Base: shared roofline + traffic-energy helpers."""

    def __init__(self, arch: ArchConfig = DEFAULT_ARCH, name: str | None = None) -> None:
        self.arch = arch
        self.name = name or arch.name

    # ------------------------------------------------------------------ #
    def run_layer(self, spec: LayerSpec) -> LayerResult:
        raise NotImplementedError

    def run_network(self, specs: list[LayerSpec]) -> NetworkResult:
        result = NetworkResult(design=self.name)
        result.layers = [self.run_layer(s) for s in specs]
        return result

    # ------------------------------------------------------------------ #
    def _dense_compute_cycles(self, m: int, k: int, n: int) -> float:
        """Output tiles round-robined over engines, K cycles per tile."""
        tiles = _ceil_div(m, self.arch.pe_rows) * _ceil_div(n, self.arch.pe_cols)
        waves = _ceil_div(tiles, self.arch.num_engines)
        return waves * k

    def _memory_cycles(self, counts: AccessCounts) -> float:
        bw = self.arch.bandwidth
        return max(
            counts.total("dram") / bw.dram,
            counts.total("l2") / bw.l2,
            counts.total("l1") / bw.l1,
        )

    def _traffic_energy(self, counts: AccessCounts) -> dict[str, float]:
        e = self.arch.energy
        return {
            "dram": counts.total("dram") * e.dram,
            "l2": counts.total("l2") * e.l2,
            "l1": counts.total("l1") * e.l1,
        }

    def _finish(
        self,
        spec: LayerSpec,
        compute_cycles: float,
        counts: AccessCounts,
        breakdown: dict[str, float],
        effectual_macs: float,
    ) -> LayerResult:
        breakdown.update(self._traffic_energy(counts))
        memory_cycles = self._memory_cycles(counts)
        cycles = max(compute_cycles, memory_cycles)
        return LayerResult(
            name=spec.name,
            cycles=cycles,
            energy_breakdown=breakdown,
            effectual_macs=effectual_macs,
            dense_macs=spec.dense_macs,
            compute_cycles=compute_cycles,
            memory_cycles=memory_cycles,
        )


class DenseTC(AcceleratorModel):
    """Dense tensor core: no sparsity exploitation, no gating (Table 1 row 1)."""

    def __init__(self, arch: ArchConfig = DEFAULT_ARCH) -> None:
        super().__init__(arch, name="TC")

    def run_layer(self, spec: LayerSpec) -> LayerResult:
        counts = count_accesses(spec.m, spec.k, spec.n, self.arch)
        compute = self._dense_compute_cycles(spec.m, spec.k, spec.n) / self.arch.compute_efficiency
        macs = float(spec.dense_macs)
        e = self.arch.energy
        breakdown = {
            "mac": macs * e.mac * self.arch.mac_energy_overhead,
            "rf": macs * counts.rf_per_mac * e.rf,
        }
        return self._finish(spec, compute, counts, breakdown, macs)


class DSTC(AcceleratorModel):
    """Dual-side unstructured sparse tensor core (Wang et al., 2021).

    Skips compute with the product of operand densities, but pays: MAC
    energy overhead for the flexible datapath, per-MAC coordinate/index
    logic, outer-product accumulation-buffer traffic, compressed-operand
    metadata (~50 % of kept values), and a load-imbalance efficiency derate.
    When operands are dense these overheads make it *worse* than TC — the
    Fig. 12 dense-BERT result.
    """

    def __init__(
        self,
        arch: ArchConfig = DEFAULT_ARCH,
        efficiency: float = 0.95,
        mac_overhead: float = 1.38,
        metadata_factor: float = 1.5,
        accum_accesses_per_mac: float = 2.0,
        accum_spill_k: int = 256,
        imbalance_coeff: float = 0.5,
        imbalance_chunk: int = 64,
    ) -> None:
        super().__init__(arch, name="DSTC")
        self.efficiency = efficiency
        self.mac_overhead = mac_overhead
        self.metadata_factor = metadata_factor
        self.accum_accesses_per_mac = accum_accesses_per_mac
        self.accum_spill_k = accum_spill_k
        self.imbalance_coeff = imbalance_coeff
        self.imbalance_chunk = imbalance_chunk

    def _imbalance(self, density: float) -> float:
        """Cycle inflation from load imbalance across PE lanes.

        Lanes process ~Binomial(chunk, density) non-zeros per synchronised
        chunk; the array waits for the slowest lane.  The relative excess of
        the max over the mean scales like the coefficient of variation,
        ``sqrt((1-d)/(d*chunk))`` — small when dense, severe at high
        sparsity (Section 2.3's "workload imbalance problems").
        """
        d = max(density, 1e-6)
        cv = np.sqrt((1.0 - d) / (d * self.imbalance_chunk))
        return 1.0 + self.imbalance_coeff * cv

    def _compressed_factor(self, density: float) -> float:
        """Traffic factor for one operand: compressed (values + coords) when
        sparse enough for compression to pay off, raw otherwise."""
        compressed = density * self.metadata_factor
        return min(1.0, compressed)

    def run_layer(self, spec: LayerSpec) -> LayerResult:
        counts = count_accesses(spec.m, spec.k, spec.n, self.arch)
        counts = counts.scaled("A", self._compressed_factor(spec.a_density))
        counts = counts.scaled("B", self._compressed_factor(spec.b_density))
        # Outer-product partial sums spill to L2 every accum_spill_k of K.
        spills = max(1, _ceil_div(spec.k, self.accum_spill_k))
        counts.l2["C"] *= spills
        macs = spec.dense_macs * spec.a_density * spec.b_density
        pair_density = spec.a_density * spec.b_density
        compute = (
            self._dense_compute_cycles(spec.m, spec.k, spec.n)
            * pair_density
            * self._imbalance(pair_density)
            / self.efficiency
        )
        e = self.arch.energy
        breakdown = {
            "mac": macs * e.mac * self.mac_overhead,
            "accum": macs * self.accum_accesses_per_mac * e.accum_buffer,
            "index": macs * e.index_logic,
            "rf": macs * 2.0 * e.rf,  # a/b reads; c lives in the accum buffer
        }
        return self._finish(spec, compute, counts, breakdown, macs)


class StructuredSparseAccelerator(AcceleratorModel):
    """N:M structured sparse accelerator (STC / VEGETA family, Table 1 row 3).

    Executes A under its TASD series: per term, the K loop contracts to
    ``n_i/m_i`` of dense; A traffic shrinks to compressed storage; B is
    re-read from L2 once per term (kept resident — the decomposition-aware
    dataflow) with L1 reads gathered per term density; C pays one extra L1
    round-trip per additional term.  MAC energy is gated by B-side sparsity
    (``gate_on_b``), a structured-HW freebie the dense TC lacks.
    """

    def __init__(
        self,
        arch: ArchConfig = DEFAULT_ARCH,
        name: str = "StructuredSparse",
        gate_on_b: bool = True,
    ) -> None:
        super().__init__(arch, name=name)
        self.gate_on_b = gate_on_b

    # ------------------------------------------------------------------ #
    def _series_counts(self, spec: LayerSpec) -> tuple[AccessCounts, float, float]:
        """Traffic, compute-density and storage-fraction of the series."""
        config = spec.a_config
        counts = count_accesses(spec.m, spec.k, spec.n, self.arch)
        if config.is_dense:
            return counts, 1.0, 1.0
        terms = config.patterns
        density = config.density
        storage = min(1.0, sum(p.storage_fraction(16) for p in terms))
        n_terms = len(terms)
        counts = counts.scaled("A", storage)
        # B stays resident in L2 across terms (decomposition-aware dataflow);
        # each term's pass fetches only the lanes its metadata selects, so
        # both L2 and L1 B-traffic scale with the summed term density.
        counts.l2["B"] *= density
        counts.l1["B"] *= density
        counts.l1["C"] *= 2 * n_terms - 1  # partial-sum round-trips across terms
        return counts, density, storage

    def run_layer(self, spec: LayerSpec) -> LayerResult:
        counts, density, _ = self._series_counts(spec)
        compute = (
            self._dense_compute_cycles(spec.m, spec.k, spec.n)
            * density
            / self.arch.compute_efficiency
        )
        # Effectual MACs: the pattern slots actually carrying non-zeros.
        # Zero-gating (A slots and B operands) is part of the sparse datapath —
        # it engages only when a structured config runs; plain dense execution
        # behaves exactly like the dense TC (the Fig. 19 "VEGETA without
        # TASDER ≈ 1.0" condition).
        if spec.a_config.is_dense:
            macs = float(spec.dense_macs)
        else:
            a_kept = min(spec.a_density, density)
            gate = spec.b_density if self.gate_on_b else 1.0
            macs = spec.dense_macs * a_kept * gate
        e = self.arch.energy
        breakdown = {
            "mac": macs * e.mac * self.arch.mac_energy_overhead,
            "rf": spec.dense_macs * density * counts.rf_per_mac * e.rf,
        }
        breakdown.update(self._tasd_unit_energy(spec))
        return self._finish(spec, compute, counts, breakdown, macs)

    def _tasd_unit_energy(self, spec: LayerSpec) -> dict[str, float]:
        return {}


class TTC(StructuredSparseAccelerator):
    """TASD Tensor Core: a structured accelerator plus TASD units (Fig. 9).

    Adds the dynamic-decomposition energy when A is a runtime activation
    tensor: extracting ``Σ n_i`` values per M-block costs about ``M``
    comparator ops each (sequential max extraction, Section 4.4).
    """

    def __init__(self, arch: ArchConfig = DEFAULT_ARCH, name: str = "TTC", gate_on_b: bool = True) -> None:
        super().__init__(arch, name=name, gate_on_b=gate_on_b)

    def _tasd_unit_energy(self, spec: LayerSpec) -> dict[str, float]:
        config = spec.a_config
        if config.is_dense or not spec.a_dynamic:
            return {}
        compares_per_element = sum(p.n * (p.m - 1) / p.m for p in config.patterns)
        a_words = spec.m * spec.k
        return {"tasd_unit": a_words * compares_per_element * self.arch.energy.tasd_compare}
