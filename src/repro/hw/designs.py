"""The six evaluated hardware designs (Table 3) as ready-made model factories.

All share :data:`repro.hw.arch.DEFAULT_ARCH` (same hierarchy, same MAC
count, Section 5.1's fairness condition); they differ only in sparsity
support, which is exactly the paper's experimental control.
"""

from __future__ import annotations

from repro.tasder.config import (
    HardwareMenu,
    STC_2_4,
    TTC_STC_M4,
    TTC_STC_M8,
    TTC_VEGETA_M4,
    TTC_VEGETA_M8,
    VEGETA_M8,
)

from .accelerator import DSTC, AcceleratorModel, DenseTC, StructuredSparseAccelerator, TTC
from .arch import DEFAULT_ARCH, ArchConfig

__all__ = ["DesignPoint", "TABLE3_DESIGNS", "build_model", "design_by_name"]


class DesignPoint:
    """An accelerator model paired with its TASDER-visible pattern menu."""

    def __init__(self, name: str, model: AcceleratorModel, menu: HardwareMenu | None) -> None:
        self.name = name
        self.model = model
        self.menu = menu  # None for designs TASDER cannot target (TC, DSTC)

    def __repr__(self) -> str:  # pragma: no cover
        return f"DesignPoint({self.name})"


def build_model(name: str, arch: ArchConfig = DEFAULT_ARCH) -> DesignPoint:
    """Instantiate one of the evaluated designs by Table 3 name."""
    name_l = name.lower()
    if name_l == "tc":
        return DesignPoint("TC", DenseTC(arch), None)
    if name_l == "dstc":
        return DesignPoint("DSTC", DSTC(arch), None)
    if name_l == "vegeta":
        return DesignPoint(
            "VEGETA", StructuredSparseAccelerator(arch, name="VEGETA"), VEGETA_M8
        )
    if name_l == "stc":
        return DesignPoint("STC", StructuredSparseAccelerator(arch, name="STC"), STC_2_4)
    menus = {
        "ttc-stc-m4": TTC_STC_M4,
        "ttc-stc-m8": TTC_STC_M8,
        "ttc-vegeta-m4": TTC_VEGETA_M4,
        "ttc-vegeta-m8": TTC_VEGETA_M8,
    }
    if name_l in menus:
        menu = menus[name_l]
        return DesignPoint(menu.name, TTC(arch, name=menu.name), menu)
    raise ValueError(f"unknown design {name!r}")


TABLE3_DESIGNS = (
    "TC",
    "DSTC",
    "TTC-STC-M4",
    "TTC-STC-M8",
    "TTC-VEGETA-M4",
    "TTC-VEGETA-M8",
)


def design_by_name(name: str) -> DesignPoint:
    """Alias of :func:`build_model` with the default architecture."""
    return build_model(name)
