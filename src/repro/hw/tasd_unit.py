"""Cycle-level simulation of TASD units (Fig. 10's pipeline).

The PE array of a TTC engine emits ``blocks_per_cycle`` output blocks per
cycle; each block must pass through a TASD unit that extracts the series
terms sequentially — one largest-magnitude element per cycle, so a config
with ``Σ n_i = s`` occupies a unit for ``s + (terms - 1)`` cycles (the extra
cycles store each finished term's tile, matching the T2-T5 / T6 timeline of
Fig. 10 where 4:8 + 1:8 takes 5 cycles of extraction plus the store).

Little's law sizing (Section 4.4): with arrival rate ``blocks_per_cycle``
and service time ≤ M cycles, ``blocks_per_cycle * M`` units guarantee a
unit is always free — 16 units for the M=8, 2-blocks-per-cycle TTC-VEGETA.
The simulator verifies that bound and quantifies stalls below it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.series import TASDConfig

__all__ = ["TASDUnitSimResult", "service_cycles", "simulate_tasd_units", "min_units_no_stall"]


def service_cycles(config: TASDConfig) -> int:
    """Cycles one TASD unit needs per block for ``config``.

    One cycle per extracted element (Σ n_i) plus one store cycle per term
    beyond the extraction overlap — Fig. 10's 4:8+1:8 example takes 5 cycles
    of extraction (T2..T6) per block.
    """
    if config.is_dense:
        return 0
    return sum(p.n for p in config.patterns)


@dataclass(frozen=True)
class TASDUnitSimResult:
    """Outcome of a TASD-unit pipeline simulation."""

    total_cycles: int
    stall_cycles: int
    blocks_processed: int
    unit_busy_fraction: float

    @property
    def stalled(self) -> bool:
        return self.stall_cycles > 0


def simulate_tasd_units(
    config: TASDConfig,
    num_units: int,
    num_blocks: int,
    blocks_per_cycle: int = 2,
) -> TASDUnitSimResult:
    """Simulate the PE-array → TASD-unit handoff cycle by cycle.

    Every cycle the PE array produces ``blocks_per_cycle`` blocks; each needs
    a free TASD unit for ``service_cycles(config)`` cycles.  When no unit is
    free the array stalls (the condition the Little's-law sizing avoids).
    """
    if num_units <= 0:
        raise ValueError("need at least one TASD unit")
    service = service_cycles(config)
    if service == 0 or num_blocks == 0:
        return TASDUnitSimResult(0, 0, num_blocks, 0.0)

    free_at = [0] * num_units  # cycle at which each unit becomes free
    cycle = 0
    stalls = 0
    produced = 0
    busy_cycles = 0
    while produced < num_blocks:
        ready = [i for i, t in enumerate(free_at) if t <= cycle]
        if len(ready) < blocks_per_cycle and produced + len(ready) < num_blocks:
            # Not enough free units for this cycle's blocks: array stalls.
            if not ready:
                stalls += 1
                cycle += 1
                continue
        take = min(blocks_per_cycle, num_blocks - produced, len(ready))
        if take < min(blocks_per_cycle, num_blocks - produced):
            stalls += 1
        for unit in ready[:take]:
            free_at[unit] = cycle + service
            busy_cycles += service
            produced += 1
        cycle += 1
    total = max(cycle, max(free_at))
    return TASDUnitSimResult(
        total_cycles=total,
        stall_cycles=stalls,
        blocks_processed=produced,
        unit_busy_fraction=busy_cycles / (total * num_units) if total else 0.0,
    )


def min_units_no_stall(config: TASDConfig, blocks_per_cycle: int = 2) -> int:
    """The Little's-law unit count: arrival rate x service time."""
    return blocks_per_cycle * max(1, service_cycles(config))
