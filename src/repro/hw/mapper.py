"""Mapping search: choose tile sizes by sweeping the map space (Timeloop-style).

`repro.hw.dataflow.choose_tiles` picks tiles with a capacity heuristic; real
mappers (Timeloop/CoSA/ZigZag, all cited in Section 5.1) *search*.  This
module implements that search for the 2-level tiling used here: enumerate
capacity-legal (tm2, tn2) candidates, evaluate each with the full analytical
model, and keep the best by EDP (or latency / energy).

The ablation bench compares the heuristic against the searched mapping to
quantify how much performance the one-shot heuristic leaves behind.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

from .accelerator import AcceleratorModel, LayerResult, LayerSpec
from .arch import ArchConfig
from .dataflow import TileChoice

__all__ = ["MappingCandidate", "search_mapping", "best_tiles"]

Objective = Literal["edp", "latency", "energy"]


@dataclass(frozen=True)
class MappingCandidate:
    """One evaluated tiling with its metrics."""

    tiles: TileChoice
    cycles: float
    energy: float

    @property
    def edp(self) -> float:
        return self.energy * self.cycles


def _candidate_sizes(extent: int, unit: int, max_candidates: int = 8) -> list[int]:
    """Geometric ladder of tile sizes: unit, 2*unit, ... capped at extent."""
    sizes = []
    size = unit
    while size < extent and len(sizes) < max_candidates - 1:
        sizes.append(size)
        size *= 2
    sizes.append(extent)
    return sorted(set(sizes))


def search_mapping(
    model: AcceleratorModel,
    spec: LayerSpec,
    objective: Objective = "edp",
    max_candidates_per_dim: int = 8,
) -> tuple[MappingCandidate, list[MappingCandidate]]:
    """Sweep (tm2, tn2) and return (best, all evaluated candidates).

    Candidates must fit the L2 capacity; each is evaluated by temporarily
    overriding the model's tile choice.  The model instance is left
    untouched (the override is plumbed through ``run_layer_with_tiles``).
    """
    arch = model.arch
    tm1, tn1 = arch.pe_rows, arch.pe_cols
    evaluated: list[MappingCandidate] = []
    for tm2 in _candidate_sizes(spec.m, tm1, max_candidates_per_dim):
        for tn2 in _candidate_sizes(spec.n, tn1, max_candidates_per_dim):
            tiles = TileChoice(tm2=tm2, tn2=tn2, tm1=tm1, tn1=tn1)
            if tiles.l2_words(spec.k) > arch.l2_words:
                continue
            result = run_layer_with_tiles(model, spec, tiles)
            evaluated.append(
                MappingCandidate(tiles=tiles, cycles=result.cycles, energy=result.energy)
            )
    if not evaluated:
        raise ValueError(
            f"no capacity-legal mapping for {spec.name} (K={spec.k} words "
            f"exceed L2 {arch.l2_words})"
        )
    key = {
        "edp": lambda c: c.edp,
        "latency": lambda c: c.cycles,
        "energy": lambda c: c.energy,
    }[objective]
    best = min(evaluated, key=key)
    return best, evaluated


def run_layer_with_tiles(
    model: AcceleratorModel, spec: LayerSpec, tiles: TileChoice
) -> LayerResult:
    """Evaluate one layer under an explicit tile choice.

    Monkey-patches the dataflow's tile chooser for the duration of one call;
    the accelerator models funnel all tiling decisions through
    ``count_accesses``'s optional ``tiles`` argument via this hook.
    """
    from . import accelerator as accel_mod
    from . import dataflow as dataflow_mod

    original = dataflow_mod.choose_tiles

    def forced(m: int, k: int, n: int, arch: ArchConfig) -> TileChoice:
        return tiles

    dataflow_mod.choose_tiles = forced
    accel_mod.choose_tiles = forced
    try:
        return model.run_layer(spec)
    finally:
        dataflow_mod.choose_tiles = original
        accel_mod.choose_tiles = original


def best_tiles(model: AcceleratorModel, spec: LayerSpec, objective: Objective = "edp") -> TileChoice:
    """Convenience: just the winning tile choice."""
    best, _ = search_mapping(model, spec, objective)
    return best.tiles
