"""Tiled-GEMM dataflow: access counting per memory level (Timeloop-lite).

Models the mapping of Fig. 11: C tiles stationary in each engine's L1, B
tiles stationary in the shared L2, A (the decomposed operand) streamed
through and held element-stationary in PE register files.  Access counts
follow the standard tiled-GEMM reuse algebra and are verified against an
explicit loop-nest simulation in the tests (conservation property: every
level's reads of a tensor are at least the level below's refills).

Conventions: ``C[M,N] += A[M,K] @ B[K,N]`` — A is always the operand TASD
decomposes (weights for TASD-W, activations for TASD-A; the workload layer
orients accordingly).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .arch import ArchConfig

__all__ = ["TileChoice", "AccessCounts", "choose_tiles", "count_accesses"]


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


@dataclass(frozen=True)
class TileChoice:
    """Tile sizes at the L2 (shared) and L1 (per-engine) levels.

    ``tm2 x tn2`` is the C-footprint an L2 residency covers (with full K);
    ``tm1 x tn1`` is one engine's output tile (the PE array shape).
    """

    tm2: int
    tn2: int
    tm1: int
    tn1: int

    def l2_words(self, k: int) -> int:
        """L2 residency: the B slab (K x tn2) plus an A stripe (tm2 x K)."""
        return k * self.tn2 + self.tm2 * k

    def l1_words(self, k: int) -> int:
        """L1 residency per engine: C tile + current B column block."""
        return self.tm1 * self.tn1 + k * self.tn1


def choose_tiles(m: int, k: int, n: int, arch: ArchConfig) -> TileChoice:
    """Pick tile sizes that fit the hierarchy (greedy, capacity-driven).

    tn2 grows first (the paper: "by increasing the tile size for GEMM-N
    dimension, the reuse count for A tile could increase, limited by SMEM
    capacity"), then tm2 takes what is left of L2.
    """
    tm1, tn1 = arch.pe_rows, arch.pe_cols
    # Largest tn2 (multiple of tn1) whose B slab leaves room for an A stripe.
    budget = arch.l2_words
    tn2 = min(n, max(tn1, (budget // 2 // max(1, k)) // tn1 * tn1))
    tn2 = max(tn1, min(tn2, _ceil_div(n, tn1) * tn1))
    remaining = max(0, budget - k * tn2)
    tm2 = min(m, max(tm1, (remaining // max(1, k)) // tm1 * tm1))
    tm2 = max(tm1, tm2)
    return TileChoice(tm2=tm2, tn2=tn2, tm1=tm1, tn1=tn1)


@dataclass
class AccessCounts:
    """Word-granularity access counts per tensor per level boundary.

    ``dram[t]`` counts words of tensor ``t`` crossing DRAM<->L2;
    ``l2[t]`` counts L2<->L1 crossings; ``l1[t]`` counts L1<->PE/RF reads;
    ``rf_per_mac`` is register-file accesses per effectual MAC.
    """

    dram: dict[str, float] = field(default_factory=dict)
    l2: dict[str, float] = field(default_factory=dict)
    l1: dict[str, float] = field(default_factory=dict)
    rf_per_mac: float = 4.0  # a, b reads + c read/modify/write at the PE

    def total(self, level: str) -> float:
        return sum(getattr(self, level).values())

    def scaled(self, tensor: str, factor: float) -> "AccessCounts":
        """A copy with one tensor's traffic scaled at every level."""
        out = AccessCounts(dict(self.dram), dict(self.l2), dict(self.l1), self.rf_per_mac)
        for level in (out.dram, out.l2, out.l1):
            if tensor in level:
                level[tensor] *= factor
        return out


def count_accesses(m: int, k: int, n: int, arch: ArchConfig, tiles: TileChoice | None = None) -> AccessCounts:
    """Dense access counts for the Fig. 11 mapping.

    Loop nest (outer to inner)::

        for n2 in N/tn2:          # B slab resident in L2
          for m2 in M/tm2:        # A stripe streamed into L2
            for m1, n1 in tiles:  # engines; C tile resident in L1/RF
              for k in K:         # A element stationary in RF across tn1

    - A crosses DRAM once per n2 iteration (re-streamed per B slab).
    - B crosses DRAM once (each slab read once, reused across all m2).
    - C crosses DRAM once (written; accumulation completes on-chip since
      the K loop is innermost of the residency).
    - L2->L1: A read once per n1 subtile; B read once per m1 subtile.
    - L1->PE: A read once per n1 subtile (then RF-resident for tn1 MACs);
      B read once per m1 subtile row; C stays in RF until K completes.
    """
    tiles = tiles or choose_tiles(m, k, n, arch)
    n2_iters = _ceil_div(n, tiles.tn2)
    m1_per_m = _ceil_div(m, tiles.tm1)
    n1_per_n = _ceil_div(n, tiles.tn1)

    counts = AccessCounts()
    a_words = m * k
    b_words = k * n
    c_words = m * n

    counts.dram = {
        "A": float(a_words * n2_iters),
        "B": float(b_words),
        "C": float(c_words),
    }
    counts.l2 = {
        "A": float(a_words * n1_per_n),
        "B": float(b_words * m1_per_m),
        "C": float(c_words),
    }
    counts.l1 = {
        "A": float(a_words * n1_per_n),
        "B": float(b_words * m1_per_m),
        "C": float(c_words),
    }
    return counts
