"""Architecture configuration: PE array, memory hierarchy, energy tables.

Mirrors the evaluation setup of Section 5.1: every design shares the same
memory hierarchy and MAC count (4 engines x 16x16 PEs), so differences come
only from sparsity support.  Energy-per-access constants follow the
Eyeriss/Sparseloop lineage of public numbers (16-bit datapath, 45 nm-class
relative costs); absolute joules are not the claim — relative EDP is.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = ["EnergyTable", "Bandwidth", "ArchConfig", "DEFAULT_ARCH"]


@dataclass(frozen=True)
class EnergyTable:
    """Energy per access / operation, in pJ (16-bit words)."""

    mac: float = 1.0
    rf: float = 0.15
    l1: float = 1.5
    l2: float = 8.0
    dram: float = 120.0
    accum_buffer: float = 4.0  # DSTC's outer-product accumulation SRAM (incl. conflicts)
    index_logic: float = 0.4  # per-effectual-MAC coordinate computation (unstructured)
    tasd_compare: float = 0.05  # one comparator op inside a TASD unit

    def scaled(self, **overrides: float) -> "EnergyTable":
        return replace(self, **overrides)


@dataclass(frozen=True)
class Bandwidth:
    """Peak words per cycle between adjacent levels (shared across engines)."""

    dram: float = 32.0
    l2: float = 128.0
    l1: float = 256.0


@dataclass(frozen=True)
class ArchConfig:
    """One accelerator instance (Table 3 row).

    ``mac_energy_overhead`` models the area/power cost of sparsity support
    logic (e.g. SIGMA's 38 % / SCNN's 34 % overheads quoted in Section 2.3);
    it multiplies MAC energy.  ``compute_efficiency`` derates peak
    utilisation for designs with load-imbalance-prone datapaths.
    """

    name: str = "TTC"
    num_engines: int = 4
    pe_rows: int = 16
    pe_cols: int = 16
    l1_kib: int = 64
    l2_kib: int = 2048
    energy: EnergyTable = field(default_factory=EnergyTable)
    bandwidth: Bandwidth = field(default_factory=Bandwidth)
    mac_energy_overhead: float = 1.0
    compute_efficiency: float = 1.0

    @property
    def macs_per_cycle(self) -> int:
        return self.num_engines * self.pe_rows * self.pe_cols

    @property
    def l1_words(self) -> int:
        return self.l1_kib * 1024 // 2  # 16-bit words

    @property
    def l2_words(self) -> int:
        return self.l2_kib * 1024 // 2

    def with_overheads(self, mac_energy_overhead: float, compute_efficiency: float, name: str | None = None) -> "ArchConfig":
        return replace(
            self,
            mac_energy_overhead=mac_energy_overhead,
            compute_efficiency=compute_efficiency,
            name=name or self.name,
        )


DEFAULT_ARCH = ArchConfig()
