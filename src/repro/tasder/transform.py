"""Model transformation: CONV/FC → TCONV/TFC (+ TASD layers), Fig. 7.

Weight-side (TASD-W): each targeted GEMM layer gets an *effective weight* —
the TASD-series view of its trained weight — used during eval-mode forward
passes.  The true parameter is untouched, so transforms are reversible.

Activation-side (TASD-A): each targeted GEMM layer gets an input transform
that decomposes the incoming activation tensor on the fly, modelling the
TASD unit's dynamic decomposition (the TASD layer of Fig. 7c, fused into
the consuming TCONV/TFC for simplicity of graph surgery).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.series import DENSE_CONFIG, TASDConfig
from repro.nn.layers import Conv2d, Linear, _GemmLayer
from repro.nn.module import Module
from repro.pruning.targets import gemm_layers
from repro.tensor.blocks import crop_to_shape, pad_to_multiple

__all__ = [
    "decompose_weight_matrix",
    "decompose_activation",
    "TASDTransform",
    "apply_weight_transform",
    "apply_activation_transform",
    "clear_transform",
]


def decompose_weight_matrix(w: np.ndarray, config: TASDConfig) -> np.ndarray:
    """TASD view of a weight matrix along its reduction (last) axis.

    Pads ragged reduction dims with zeros before decomposing (padding never
    changes which elements a view keeps) and crops back.
    """
    if config.is_dense:
        return np.asarray(w)
    padded = pad_to_multiple(w, config.block_lcm, axis=-1)
    approx = config.view(padded, axis=-1)
    return crop_to_shape(approx, w.shape)


def decompose_activation(x: np.ndarray, config: TASDConfig, axis: int) -> np.ndarray:
    """TASD view of an activation tensor along ``axis`` (dynamic TASD-A path)."""
    if config.is_dense:
        return np.asarray(x)
    original_shape = x.shape
    padded = pad_to_multiple(x, config.block_lcm, axis=axis)
    approx = config.view(padded, axis=axis)
    return crop_to_shape(approx, original_shape)


def _activation_axis(layer: _GemmLayer) -> int:
    """Axis of the incoming activation the TASD unit blocks along.

    Convolutions consume NCHW maps — blocks run along channels (the leading
    chunk of the im2col reduction axis); Linear layers consume feature-last
    tensors.
    """
    return 1 if isinstance(layer, Conv2d) else -1


@dataclass
class TASDTransform:
    """A TASD transformation ``T`` of a model (Section 4.2's notation).

    Maps layer names to weight-side and/or activation-side configurations.
    Layers absent from a mapping stay dense on that side.
    """

    weight_configs: dict[str, TASDConfig] = field(default_factory=dict)
    activation_configs: dict[str, TASDConfig] = field(default_factory=dict)

    def merged_with(self, other: "TASDTransform") -> "TASDTransform":
        """Combine two transforms; ``other`` wins on conflicts."""
        return TASDTransform(
            weight_configs={**self.weight_configs, **other.weight_configs},
            activation_configs={**self.activation_configs, **other.activation_configs},
        )

    def summary(self) -> str:
        lines = []
        for name in sorted(set(self.weight_configs) | set(self.activation_configs)):
            w = self.weight_configs.get(name, DENSE_CONFIG)
            a = self.activation_configs.get(name, DENSE_CONFIG)
            lines.append(f"  {name}: W={w} A={a}")
        return "\n".join(lines) or "  (identity transform)"


def apply_weight_transform(model: Module, configs: dict[str, TASDConfig]) -> None:
    """Install decomposed effective weights (CONV/FC → TCONV/TFC, Fig. 7b)."""
    layers = dict(gemm_layers(model, include_head=True))
    for name, config in configs.items():
        if name not in layers:
            raise KeyError(f"no GEMM layer named {name!r} in model")
        layer = layers[name]
        if config.is_dense:
            layer.set_effective_weight(None)
        else:
            layer.set_effective_weight(decompose_weight_matrix(layer.weight_matrix(), config))


def apply_activation_transform(model: Module, configs: dict[str, TASDConfig]) -> None:
    """Install dynamic activation decomposition (TASD layer of Fig. 7c)."""
    layers = dict(gemm_layers(model, include_head=True))
    for name, config in configs.items():
        if name not in layers:
            raise KeyError(f"no GEMM layer named {name!r} in model")
        layer = layers[name]
        if config.is_dense:
            _uninstall_input_transform(layer)
        else:
            _install_input_transform(layer, config)


def clear_transform(model: Module) -> None:
    """Remove every TASD effect, restoring the original dense execution."""
    for _, layer in gemm_layers(model, include_head=True):
        layer.set_effective_weight(None)
        _uninstall_input_transform(layer)


# --------------------------------------------------------------------------
# Input-transform plumbing: wrap the layer's forward to decompose its input
# during eval-mode execution only (training always sees exact activations).
# --------------------------------------------------------------------------
def _install_input_transform(layer: _GemmLayer, config: TASDConfig) -> None:
    _uninstall_input_transform(layer)
    axis = _activation_axis(layer)
    original_forward = layer.forward

    def forward_with_tasd(x: np.ndarray) -> np.ndarray:
        if not layer.training:
            x = decompose_activation(x, config, axis)
        return original_forward(x)

    layer._tasd_original_forward = original_forward
    layer.tasd_activation_config = config
    layer.forward = forward_with_tasd


def _uninstall_input_transform(layer: _GemmLayer) -> None:
    original = getattr(layer, "_tasd_original_forward", None)
    if original is not None:
        layer.forward = original
        del layer._tasd_original_forward
    if hasattr(layer, "tasd_activation_config"):
        del layer.tasd_activation_config
