"""TASD for training: structured approximation of gradients (Section 6.2).

The paper leaves training as future work: "TASD can potentially be used to
approximate sparse activations and gradients during DNN training."  This
module implements that extension for the NumPy substrate:

* :class:`GradientTASD` — after every backward pass, replace each GEMM
  layer's weight gradient with its TASD-series view.  On structured sparse
  hardware the backward GEMMs then enjoy the same N:M compute skipping as
  inference, at the cost of a (bounded, measured) gradient approximation.
* :func:`train_with_tasd_gradients` — a drop-in training loop wrapper that
  applies the compression and tracks the relative gradient error, so the
  accuracy-vs-savings trade-off is observable rather than asserted.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.series import TASDConfig
from repro.nn.module import Module
from repro.nn.train import Adam, cross_entropy, evaluate_accuracy, iterate_minibatches
from repro.pruning.targets import gemm_layers
from repro.tensor.blocks import crop_to_shape, pad_to_multiple

__all__ = ["GradientTASD", "TasdTrainingResult", "train_with_tasd_gradients"]


class GradientTASD:
    """Compress GEMM weight gradients with a TASD series after backward."""

    def __init__(self, model: Module, config: TASDConfig, include_head: bool = False) -> None:
        if config.is_dense:
            raise ValueError("gradient compression needs a non-dense TASD config")
        self.config = config
        self.layers = gemm_layers(model, include_head)
        self._lcm = int(np.lcm.reduce([p.m for p in config.patterns]))
        self.last_relative_error: float = 0.0
        self.compressed_steps: int = 0

    @property
    def compute_density(self) -> float:
        """Backward-GEMM compute fraction the series implies (Σ n_i/m_i)."""
        return self.config.density

    def compress(self) -> float:
        """Replace each layer's ``weight.grad`` with its TASD view, in place.

        Returns the parameter-weighted relative L2 error of this step's
        compression (0 when gradients are already structured).
        """
        err_sq = 0.0
        norm_sq = 0.0
        for _, layer in self.layers:
            grad = layer.weight.grad
            matrix = grad.reshape(grad.shape[0], -1) if grad.ndim > 2 else grad
            padded = pad_to_multiple(matrix, self._lcm, axis=-1)
            approx = crop_to_shape(self.config.view(padded, axis=-1), matrix.shape)
            err_sq += float(((matrix - approx) ** 2).sum())
            norm_sq += float((matrix**2).sum())
            layer.weight.grad = approx.reshape(grad.shape)
        self.last_relative_error = float(np.sqrt(err_sq / norm_sq)) if norm_sq else 0.0
        self.compressed_steps += 1
        return self.last_relative_error


@dataclass
class TasdTrainingResult:
    """Trajectory of a TASD-compressed training run."""

    losses: list[float] = field(default_factory=list)
    gradient_errors: list[float] = field(default_factory=list)
    final_accuracy: float = 0.0
    compute_density: float = 1.0

    @property
    def mean_gradient_error(self) -> float:
        return float(np.mean(self.gradient_errors)) if self.gradient_errors else 0.0


def train_with_tasd_gradients(
    model: Module,
    x: np.ndarray,
    y: np.ndarray,
    config: TASDConfig,
    epochs: int = 3,
    batch_size: int = 32,
    lr: float = 1e-3,
    seed: int = 0,
) -> TasdTrainingResult:
    """Train with TASD-compressed weight gradients.

    Identical to :func:`repro.nn.train.train_classifier` except every
    optimizer step consumes structured-sparse gradients — the training-side
    use the paper sketches.  Compute savings in the weight-gradient GEMMs
    equal ``1 - config.density``.
    """
    rng = np.random.default_rng(seed)
    optimizer = Adam(model, lr=lr)
    compressor = GradientTASD(model, config)
    result = TasdTrainingResult(compute_density=config.density)
    model.train()
    for _ in range(epochs):
        for xb, yb in iterate_minibatches(x, y, batch_size, rng):
            optimizer.zero_grad()
            logits = model(xb)
            loss, dlogits = cross_entropy(logits, yb)
            model.backward(dlogits)
            result.gradient_errors.append(compressor.compress())
            optimizer.step()
            result.losses.append(loss)
    result.final_accuracy = evaluate_accuracy(model, x, y)
    return result
