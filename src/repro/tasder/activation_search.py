"""TASD-A: selecting per-layer activation configurations (Section 4.3).

Activations are dynamic, so exhaustive per-layer testing is infeasible; the
paper instead calibrates per-layer sparsity statistics and applies the
α rule.  For GELU/Swish networks — no exact zeros — pseudo-density stands
in for sparsity.
"""

from __future__ import annotations

import numpy as np

from repro.core.series import TASDConfig
from repro.nn.module import Module
from repro.pruning.targets import gemm_layers

from .calibrate import CalibrationResult, calibrate
from .config import HardwareMenu
from .quality import evaluate_transform
from .transform import TASDTransform

__all__ = [
    "select_activation_configs",
    "activation_search",
    "network_wise_activation_sweep",
]


def select_activation_configs(
    calibration: CalibrationResult,
    menu: HardwareMenu,
    alpha: float = 0.0,
    use_pseudo_density: bool | None = None,
) -> TASDTransform:
    """α-rule selection from calibration statistics.

    ``use_pseudo_density=None`` auto-detects per layer: layers whose inputs
    carry real zeros (ReLU-fed) use measured sparsity, dense-activation
    layers (GELU/Swish-fed) use ``1 - pseudo_density`` (Section 4.3's
    "Beyond sparsity" heuristic).
    """
    if not menu.dynamic_decomposition:
        raise ValueError(
            f"{menu.name} has no TASD units; activation decomposition needs "
            "dynamic decomposition support (use a TTC design)"
        )
    configs: dict[str, TASDConfig] = {}
    for name, profile in calibration:
        if use_pseudo_density is None:
            sparsity = profile.effective_sparsity
        elif use_pseudo_density:
            sparsity = 1.0 - profile.mean_pseudo_density
        else:
            sparsity = profile.mean_sparsity
        configs[name] = menu.select_by_sparsity(sparsity, alpha)
    return TASDTransform(activation_configs=configs)


def activation_search(
    model: Module,
    menu: HardwareMenu,
    calibration_data: np.ndarray,
    alpha: float = 0.0,
    include_head: bool = False,
    skip_layers: tuple[str, ...] = (),
) -> TASDTransform:
    """Calibrate and select in one step (the TASDER TASD-A pipeline).

    ``skip_layers`` excludes layers whose activations empirically cannot be
    approximated (the paper keeps QKV-projection FCs dense, Section 4.3).
    """
    calibration = calibrate(model, calibration_data, include_head)
    transform = select_activation_configs(calibration, menu, alpha)
    for name in skip_layers:
        transform.activation_configs.pop(name, None)
    return transform


def network_wise_activation_sweep(
    model: Module,
    configs: list[TASDConfig],
    x_eval: np.ndarray,
    y_eval: np.ndarray,
    include_head: bool = False,
) -> list[tuple[TASDConfig, float]]:
    """Accuracy of each single config applied to all activations (Fig. 14, lower)."""
    layer_names = [name for name, _ in gemm_layers(model, include_head)]
    results = []
    for config in configs:
        transform = TASDTransform(activation_configs={n: config for n in layer_names})
        acc = evaluate_transform(model, transform, x_eval, y_eval)
        results.append((config, acc))
    return results
