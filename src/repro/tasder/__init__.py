"""TASDER: the HW/SW bridge that finds TASD series per layer (Section 4)."""

from .activation_search import (
    activation_search,
    network_wise_activation_sweep,
    select_activation_configs,
)
from .calibrate import ActivationProfile, CalibrationResult, calibrate
from .config import (
    ALL_TTC_MENUS,
    STC_2_4,
    TTC_STC_M4,
    TTC_STC_M8,
    TTC_VEGETA_M4,
    TTC_VEGETA_M8,
    VEGETA_M8,
    HardwareMenu,
    menu_n4,
    menu_n8,
    menu_n16,
)
from .framework import Tasder, TasderResult
from .quality import (
    QualityGate,
    collect_gemm_shapes,
    evaluate_transform,
    transform_compute_fraction,
)
from .training import GradientTASD, TasdTrainingResult, train_with_tasd_gradients
from .transform import (
    TASDTransform,
    apply_activation_transform,
    apply_weight_transform,
    clear_transform,
    decompose_activation,
    decompose_weight_matrix,
)
from .weight_search import (
    GreedySearchResult,
    candidate_drop_table,
    greedy_weight_search,
    network_wise_weight_sweep,
    sparsity_based_weight_selection,
)

__all__ = [
    "Tasder",
    "TasderResult",
    "HardwareMenu",
    "TTC_STC_M4",
    "TTC_STC_M8",
    "TTC_VEGETA_M4",
    "TTC_VEGETA_M8",
    "VEGETA_M8",
    "STC_2_4",
    "ALL_TTC_MENUS",
    "menu_n4",
    "menu_n8",
    "menu_n16",
    "TASDTransform",
    "apply_weight_transform",
    "apply_activation_transform",
    "clear_transform",
    "decompose_weight_matrix",
    "decompose_activation",
    "calibrate",
    "CalibrationResult",
    "ActivationProfile",
    "greedy_weight_search",
    "GreedySearchResult",
    "candidate_drop_table",
    "sparsity_based_weight_selection",
    "network_wise_weight_sweep",
    "activation_search",
    "select_activation_configs",
    "network_wise_activation_sweep",
    "QualityGate",
    "evaluate_transform",
    "collect_gemm_shapes",
    "transform_compute_fraction",
    "GradientTASD",
    "TasdTrainingResult",
    "train_with_tasd_gradients",
]
