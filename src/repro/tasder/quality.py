"""Model-quality evaluation under TASD transforms.

The acceptance criterion follows MLPerf (Section 5.1): a transformed model
is valid only if its accuracy is at least 99 % of the original model's.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.im2col import GemmShape
from repro.nn.module import Module
from repro.nn.train import evaluate_accuracy
from repro.pruning.targets import gemm_layers

from .transform import TASDTransform, apply_activation_transform, apply_weight_transform, clear_transform

__all__ = [
    "QualityGate",
    "evaluate_transform",
    "collect_gemm_shapes",
    "transform_compute_fraction",
]


@dataclass(frozen=True)
class QualityGate:
    """The ≥ 99 %-of-original accuracy rule."""

    original_accuracy: float
    threshold: float = 0.99

    @property
    def min_accuracy(self) -> float:
        return self.threshold * self.original_accuracy

    def accepts(self, accuracy: float) -> bool:
        return accuracy >= self.min_accuracy - 1e-12


def evaluate_transform(
    model: Module,
    transform: TASDTransform,
    x: np.ndarray,
    y: np.ndarray,
    restore: bool = True,
) -> float:
    """Accuracy of ``model`` under ``transform`` (optionally restoring after)."""
    apply_weight_transform(model, transform.weight_configs)
    apply_activation_transform(model, transform.activation_configs)
    try:
        return evaluate_accuracy(model, x, y)
    finally:
        if restore:
            clear_transform(model)


def collect_gemm_shapes(
    model: Module, sample_input: np.ndarray, include_head: bool = False
) -> dict[str, GemmShape]:
    """Per-layer GEMM shapes observed on one forward pass of ``sample_input``.

    M is normalised per sample (divided by the batch size), so MAC counts
    are per-inference — the unit the paper's Fig. 20 reports.
    """
    model.eval()
    clear = []
    shapes: dict[str, GemmShape] = {}
    batch = sample_input.shape[0]

    def make_hook(name: str, layer) -> None:
        def hook(module, x, _out):
            if hasattr(layer, "gemm_shape"):
                if hasattr(layer, "kernel_size"):  # Conv2d: needs spatial dims
                    gs = layer.gemm_shape(batch, x.shape[2], x.shape[3])
                else:
                    rows = int(np.prod(x.shape[:-1]))
                    gs = GemmShape(m=rows, k=layer.in_features, n=layer.out_features)
                shapes[name] = GemmShape(m=max(1, gs.m // batch), k=gs.k, n=gs.n)

        layer.register_forward_hook(hook)
        clear.append(layer)

    for name, layer in gemm_layers(model, include_head):
        make_hook(name, layer)
    try:
        model(sample_input)
    finally:
        for layer in clear:
            layer.clear_forward_hooks()
    return shapes


def transform_compute_fraction(
    transform: TASDTransform, shapes: dict[str, GemmShape]
) -> float:
    """MAC-weighted compute fraction of a transform relative to dense.

    Each layer's GEMM runs at the density of its weight- or activation-side
    series (whichever is applied; the paper never stacks both on one GEMM,
    Section 5.1), so the model-level fraction is the MAC-weighted mean.
    Layers without shapes (never exercised) are skipped.
    """
    total = 0
    effective = 0.0
    for name, shape in shapes.items():
        w_cfg = transform.weight_configs.get(name)
        a_cfg = transform.activation_configs.get(name)
        density = 1.0
        if w_cfg is not None and not w_cfg.is_dense:
            density = w_cfg.density
        elif a_cfg is not None and not a_cfg.is_dense:
            density = a_cfg.density
        total += shape.macs
        effective += shape.macs * density
    return effective / total if total else 1.0
