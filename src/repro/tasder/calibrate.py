"""Calibration: per-layer activation statistics on a small sample set.

Section 4.3: activation sparsity is dynamic but, per layer, stable across
inputs — so TASDER profiles the model on a calibration set (≈1000 ImageNet
images in the paper; a synthetic batch here) and records per-layer sparsity
and pseudo-density statistics that drive TASD-A selection.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.module import Module
from repro.pruning.targets import gemm_layers
from repro.tensor.stats import pseudo_density

__all__ = ["ActivationProfile", "CalibrationResult", "calibrate"]


@dataclass(frozen=True)
class ActivationProfile:
    """Input-activation statistics of one GEMM layer over calibration data."""

    layer: str
    mean_sparsity: float
    p99_sparsity: float
    min_sparsity: float
    mean_pseudo_density: float

    @property
    def effective_sparsity(self) -> float:
        """Sparsity proxy: real zeros for ReLU nets, pseudo-density complement
        for dense-activation nets (the Section 4.3 substitution)."""
        if self.mean_sparsity >= 0.05:
            return self.mean_sparsity
        return 1.0 - self.mean_pseudo_density


@dataclass(frozen=True)
class CalibrationResult:
    """Per-layer activation profiles, keyed by layer name."""

    profiles: dict[str, ActivationProfile]

    def __getitem__(self, name: str) -> ActivationProfile:
        return self.profiles[name]

    def __iter__(self):
        return iter(self.profiles.items())

    def __len__(self) -> int:
        return len(self.profiles)


def calibrate(
    model: Module,
    calibration_batches: list[np.ndarray] | np.ndarray,
    include_head: bool = False,
    pseudo_density_target: float = 0.99,
) -> CalibrationResult:
    """Profile input-activation sparsity of every GEMM layer.

    Runs eval-mode forward passes over the calibration batches with hooks on
    each GEMM layer recording the sparsity and pseudo-density of its *input*
    tensor (the operand TASD-A decomposes).
    """
    if isinstance(calibration_batches, np.ndarray):
        calibration_batches = [calibration_batches]
    layers = gemm_layers(model, include_head)
    records: dict[str, dict[str, list[float]]] = {
        name: {"sparsity": [], "pseudo": []} for name, _ in layers
    }

    def make_hook(name: str):
        def hook(module: Module, x: np.ndarray, _out: np.ndarray) -> None:
            rec = records[name]
            size = x.size
            rec["sparsity"].append(1.0 - np.count_nonzero(x) / size if size else 0.0)
            rec["pseudo"].append(pseudo_density(x, pseudo_density_target))

        return hook

    for name, layer in layers:
        layer.register_forward_hook(make_hook(name))
    try:
        model.eval()
        for batch in calibration_batches:
            model(batch)
    finally:
        for _, layer in layers:
            layer.clear_forward_hooks()

    profiles: dict[str, ActivationProfile] = {}
    for name, rec in records.items():
        sparsities = np.array(rec["sparsity"]) if rec["sparsity"] else np.zeros(1)
        pseudo = np.array(rec["pseudo"]) if rec["pseudo"] else np.ones(1)
        profiles[name] = ActivationProfile(
            layer=name,
            mean_sparsity=float(sparsities.mean()),
            p99_sparsity=float(np.percentile(sparsities, 99)),
            min_sparsity=float(sparsities.min()),
            mean_pseudo_density=float(pseudo.mean()),
        )
    return CalibrationResult(profiles=profiles)
