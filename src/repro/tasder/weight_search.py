"""TASD-W: selecting per-layer weight configurations (Section 4.2).

Two selection methods, both from the paper:

* :func:`greedy_weight_search` — the dropped-non-zero greedy: measure the
  dropped-nnz fraction of every (layer, config) pair, sort ascending, apply
  in order until model quality falls below the gate, then roll back the
  violating application and stop.  Single pass; runtime seconds per model.
* :func:`sparsity_based_weight_selection` — the α rule applied to weight
  sparsity (what Section 5.3 uses for layer-wise TASD-W curves).

And the exhaustive network-wise search used by Fig. 14's upper plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.metrics import dropped_nonzero_fraction
from repro.core.series import DENSE_CONFIG, TASDConfig
from repro.nn.module import Module
from repro.pruning.targets import gemm_layers
from repro.tensor.blocks import pad_to_multiple

from .config import HardwareMenu
from .quality import QualityGate, evaluate_transform
from .transform import TASDTransform, decompose_weight_matrix

__all__ = [
    "weight_dropped_fraction",
    "candidate_drop_table",
    "GreedySearchResult",
    "greedy_weight_search",
    "sparsity_based_weight_selection",
    "network_wise_weight_sweep",
]


def weight_dropped_fraction(w: np.ndarray, config: TASDConfig) -> float:
    """Fraction of weight non-zeros a config's view drops."""
    if config.is_dense:
        return 0.0
    lcm = int(np.lcm.reduce([p.m for p in config.patterns]))
    padded = pad_to_multiple(w, lcm, axis=-1)
    dec = config.apply(padded, axis=-1)
    return dropped_nonzero_fraction(dec)


# Backwards-compatible private alias.
_weight_dropped_fraction = weight_dropped_fraction


def candidate_drop_table(
    model: Module, menu: HardwareMenu, include_head: bool = False
) -> list[tuple[float, str, TASDConfig]]:
    """All (dropped_fraction, layer, config) triples, sorted ascending.

    The greedy algorithm's worklist: cheapest approximations first.
    """
    table: list[tuple[float, str, TASDConfig]] = []
    for name, layer in gemm_layers(model, include_head):
        w = layer.weight_matrix()
        for config in menu.configs(include_dense=False):
            table.append((weight_dropped_fraction(w, config), name, config))
    table.sort(key=lambda row: (row[0], row[2].density, row[1]))
    return table


@dataclass
class GreedySearchResult:
    """Outcome of the greedy TASD-W search."""

    transform: TASDTransform
    accuracy: float
    original_accuracy: float
    applications: int = 0
    evaluations: int = 0
    log: list[str] = field(default_factory=list)


def greedy_weight_search(
    model: Module,
    menu: HardwareMenu,
    x_eval: np.ndarray,
    y_eval: np.ndarray,
    threshold: float = 0.99,
    include_head: bool = False,
    eval_every: int = 1,
) -> GreedySearchResult:
    """The paper's greedy TASD-W algorithm.

    Applications replace a layer's current config only when the candidate is
    *more aggressive* (lower density) — a layer may appear in the table under
    several configs, and the sorted order guarantees we reach the aggressive
    ones only after their cheaper drops were accepted.  On a quality-gate
    violation the last application is rolled back and the search stops.

    ``eval_every`` batches accuracy evaluations (the expensive step) across
    several applications; on violation the whole uncommitted batch rolls back.
    """
    from repro.nn.train import evaluate_accuracy

    original_accuracy = evaluate_accuracy(model, x_eval, y_eval)
    gate = QualityGate(original_accuracy, threshold)
    table = candidate_drop_table(model, menu, include_head)

    committed: dict[str, TASDConfig] = {}
    pending: dict[str, TASDConfig] = {}
    result = GreedySearchResult(
        transform=TASDTransform(), accuracy=original_accuracy,
        original_accuracy=original_accuracy,
    )

    def flush_pending() -> bool:
        """Evaluate committed+pending; commit on pass, drop pending on fail."""
        nonlocal committed, pending
        if not pending:
            return True
        trial = {**committed, **pending}
        acc = evaluate_transform(
            model, TASDTransform(weight_configs=trial), x_eval, y_eval
        )
        result.evaluations += 1
        if gate.accepts(acc):
            committed = trial
            result.accuracy = acc
            result.applications += len(pending)
            pending = {}
            return True
        result.log.append(
            f"rolled back {len(pending)} application(s): accuracy {acc:.4f} "
            f"< gate {gate.min_accuracy:.4f}"
        )
        pending = {}
        return False

    for dropped, name, config in table:
        current = pending.get(name, committed.get(name, DENSE_CONFIG))
        if not current.is_dense and config.density >= current.density:
            continue  # not more aggressive than what's already applied
        pending[name] = config
        result.log.append(f"apply {config} to {name} (drop {dropped:.2%})")
        if len(pending) >= eval_every:
            if not flush_pending():
                break
    else:
        flush_pending()

    result.transform = TASDTransform(weight_configs=dict(committed))
    return result


def sparsity_based_weight_selection(
    model: Module,
    menu: HardwareMenu,
    alpha: float = 0.0,
    include_head: bool = False,
) -> TASDTransform:
    """Layer-wise TASD-W via the α rule on measured weight sparsity."""
    configs: dict[str, TASDConfig] = {}
    for name, layer in gemm_layers(model, include_head):
        w = layer.weight_matrix()
        sparsity = 1.0 - np.count_nonzero(w) / w.size
        configs[name] = menu.select_by_sparsity(sparsity, alpha)
    return TASDTransform(weight_configs=configs)


def network_wise_weight_sweep(
    model: Module,
    configs: list[TASDConfig],
    x_eval: np.ndarray,
    y_eval: np.ndarray,
    include_head: bool = False,
) -> list[tuple[TASDConfig, float]]:
    """Accuracy of applying each single config to *all* layers (Fig. 14, upper).

    Returns (config, accuracy) pairs in the given config order.
    """
    layer_names = [name for name, _ in gemm_layers(model, include_head)]
    results = []
    for config in configs:
        transform = TASDTransform(weight_configs={n: config for n in layer_names})
        acc = evaluate_transform(model, transform, x_eval, y_eval)
        results.append((config, acc))
    return results
