"""TASDER: the end-to-end optimizer (Fig. 5's system overview).

Inputs: a DNN model, sample data, the target hardware's structured sparsity
menu, and hyperparameters.  Output: a TASD transformation (per-layer series
configurations) that maximises compute reduction subject to the 99 %
accuracy gate, plus the transformed model ready for inference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.data import Dataset
from repro.nn.module import Module
from repro.nn.train import evaluate_accuracy

from .activation_search import activation_search
from .config import HardwareMenu
from .quality import collect_gemm_shapes, evaluate_transform, transform_compute_fraction
from .transform import (
    TASDTransform,
    apply_activation_transform,
    apply_weight_transform,
    clear_transform,
)
from .weight_search import greedy_weight_search, sparsity_based_weight_selection

__all__ = ["TasderResult", "Tasder"]


@dataclass
class TasderResult:
    """What TASDER returns: the transform and its measured effects."""

    transform: TASDTransform
    original_accuracy: float
    transformed_accuracy: float
    compute_fraction: float

    @property
    def mac_reduction(self) -> float:
        """Fractional MAC savings (Fig. 20's metric)."""
        return 1.0 - self.compute_fraction

    @property
    def accuracy_retention(self) -> float:
        if self.original_accuracy == 0.0:
            return 1.0
        return self.transformed_accuracy / self.original_accuracy

    def __str__(self) -> str:  # pragma: no cover - formatting
        return (
            f"accuracy {self.original_accuracy:.4f} -> {self.transformed_accuracy:.4f} "
            f"({self.accuracy_retention:.1%} retained), "
            f"MACs x{self.compute_fraction:.3f} ({self.mac_reduction:.1%} saved)"
        )


class Tasder:
    """The TASDER framework (Section 4.1).

    Parameters
    ----------
    model : Module
        The (possibly unstructured-sparse) trained model to accelerate.
    dataset : Dataset
        Provides the evaluation split (quality gate) and calibration split
        (activation statistics).
    menu : HardwareMenu
        Target hardware's supported structured sparsity patterns.
    threshold : float
        Accuracy-retention requirement (0.99 per MLPerf).
    alpha : float
        TASD-A aggressiveness hyperparameter.
    """

    def __init__(
        self,
        model: Module,
        dataset: Dataset,
        menu: HardwareMenu,
        threshold: float = 0.99,
        alpha: float = 0.0,
    ) -> None:
        self.model = model
        self.dataset = dataset
        self.menu = menu
        self.threshold = threshold
        self.alpha = alpha

    # ------------------------------------------------------------------ #
    def optimize_weights(self, method: str = "greedy", eval_every: int = 4) -> TasderResult:
        """TASD-W: decompose unstructured-sparse weights for this hardware."""
        clear_transform(self.model)
        if method == "greedy":
            search = greedy_weight_search(
                self.model, self.menu,
                self.dataset.x_eval, self.dataset.y_eval,
                threshold=self.threshold, eval_every=eval_every,
            )
            transform = search.transform
            original = search.original_accuracy
        elif method == "sparsity":
            original = evaluate_accuracy(self.model, self.dataset.x_eval, self.dataset.y_eval)
            transform = sparsity_based_weight_selection(self.model, self.menu, self.alpha)
        else:
            raise ValueError(f"unknown TASD-W method {method!r}; use 'greedy' or 'sparsity'")
        return self._finalize(transform, original)

    def optimize_activations(self, skip_layers: tuple[str, ...] = ()) -> TasderResult:
        """TASD-A: dynamic decomposition configs for activations."""
        clear_transform(self.model)
        original = evaluate_accuracy(self.model, self.dataset.x_eval, self.dataset.y_eval)
        transform = activation_search(
            self.model, self.menu, self.dataset.x_calib,
            alpha=self.alpha, skip_layers=skip_layers,
        )
        return self._finalize(transform, original)

    # ------------------------------------------------------------------ #
    def _finalize(self, transform: TASDTransform, original_accuracy: float) -> TasderResult:
        accuracy = evaluate_transform(
            self.model, transform, self.dataset.x_eval, self.dataset.y_eval, restore=False
        )
        shapes = collect_gemm_shapes(self.model, self.dataset.x_eval[:2])
        fraction = transform_compute_fraction(transform, shapes)
        clear_transform(self.model)
        return TasderResult(
            transform=transform,
            original_accuracy=original_accuracy,
            transformed_accuracy=accuracy,
            compute_fraction=fraction,
        )

    def apply(self, transform: TASDTransform) -> Module:
        """Install a transform on the model (returns it for chaining)."""
        apply_weight_transform(self.model, transform.weight_configs)
        apply_activation_transform(self.model, transform.activation_configs)
        return self.model

    def compile(self, result: "TasderResult | TASDTransform", cache=None, **plan_kwargs):
        """Compile a search result (or bare transform) into an execution plan.

        Weights are decomposed and compressed exactly once, at compile time;
        the returned :class:`repro.runtime.plan.ExecutionPlan` serves many
        requests through :class:`repro.runtime.executor.PlanExecutor`.
        Extra keyword arguments pass through to
        :func:`repro.runtime.plan.compile_plan` — e.g. ``autotune=True`` to
        pick structured-GEMM kernel backends per layer.
        """
        # Imported lazily: repro.runtime depends on this package.
        from repro.runtime.plan import compile_plan

        transform = result.transform if isinstance(result, TasderResult) else result
        clear_transform(self.model)
        return compile_plan(self.model, transform, cache=cache, **plan_kwargs)
