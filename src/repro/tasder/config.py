"""Hardware menus: which TASD series a given accelerator can execute.

A :class:`HardwareMenu` captures the structured-sparsity capability of one
accelerator (its native N:M patterns and the TASD term limit) and exposes the
*effective* configuration menu TASDER selects from — Table 2 for
TTC-VEGETA-M8, and the corresponding menus for the other designs of Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.patterns import NMPattern
from repro.core.series import DENSE_CONFIG, TASDConfig, compose_menu

__all__ = [
    "HardwareMenu",
    "TTC_STC_M4",
    "TTC_STC_M8",
    "TTC_VEGETA_M4",
    "TTC_VEGETA_M8",
    "VEGETA_M8",
    "STC_2_4",
    "menu_n4",
    "menu_n8",
    "menu_n16",
    "ALL_TTC_MENUS",
]


@dataclass(frozen=True)
class HardwareMenu:
    """Structured-sparsity capability of one accelerator design.

    Parameters
    ----------
    name : str
        Design label (matches Table 3).
    native_patterns : tuple of NMPattern
        Patterns with lossless native support.
    max_terms : int
        TASD series length limit (1 for fixed designs, 2 for TTC).
    dynamic_decomposition : bool
        True when the design has TASD units and can decompose activations at
        runtime (TASD-A); plain STC/VEGETA designs support TASD-W only.
    """

    name: str
    native_patterns: tuple[NMPattern, ...]
    max_terms: int = 2
    dynamic_decomposition: bool = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "native_patterns", tuple(self.native_patterns))

    @property
    def block_size(self) -> int:
        """The (largest) native block size M."""
        return max(p.m for p in self.native_patterns)

    def menu(self) -> dict[float, TASDConfig]:
        """Density → config menu (always includes the dense fallback)."""
        return compose_menu(self.native_patterns, max_terms=self.max_terms)

    def configs(self, include_dense: bool = True) -> list[TASDConfig]:
        """Menu configs ordered dense-first (least to most aggressive)."""
        menu = self.menu()
        ordered = [menu[d] for d in sorted(menu, reverse=True)]
        if not include_dense:
            ordered = [c for c in ordered if not c.is_dense]
        return ordered

    def select_by_sparsity(self, layer_sparsity: float, alpha: float = 0.0) -> TASDConfig:
        """The paper's α rule (Section 4.3).

        Choose the config ``Hj`` with the *largest* approximated sparsity
        that stays below ``S(L) + α``: aggressive enough to exploit the
        layer's sparsity, conservative enough (modulo α slack) not to drop
        much.  Larger α ⇒ sparser configs ⇒ more dropped non-zeros.  The
        dense fallback (approximated sparsity 0) is always admissible when
        ``S + α > 0``; otherwise dense is returned anyway.
        """
        budget = layer_sparsity + alpha
        admissible = [
            c for c in self.menu().values() if c.approximated_sparsity < budget
        ]
        if not admissible:
            return DENSE_CONFIG
        return max(admissible, key=lambda c: c.approximated_sparsity)

    def __str__(self) -> str:  # pragma: no cover - formatting
        pats = ", ".join(str(p) for p in self.native_patterns)
        return f"{self.name}[{pats}; ≤{self.max_terms} terms]"


# --------------------------------------------------------------------------
# Table 3's designs
# --------------------------------------------------------------------------
TTC_STC_M4 = HardwareMenu(
    "TTC-STC-M4", (NMPattern(2, 4),), max_terms=1, dynamic_decomposition=True
)
TTC_STC_M8 = HardwareMenu(
    "TTC-STC-M8", (NMPattern(4, 8),), max_terms=1, dynamic_decomposition=True
)
TTC_VEGETA_M4 = HardwareMenu(
    "TTC-VEGETA-M4", (NMPattern(1, 4), NMPattern(2, 4)), max_terms=2, dynamic_decomposition=True
)
TTC_VEGETA_M8 = HardwareMenu(
    "TTC-VEGETA-M8",
    (NMPattern(1, 8), NMPattern(2, 8), NMPattern(4, 8)),
    max_terms=2,
    dynamic_decomposition=True,
)
# Baselines without TASD units (weights-only, Appendix B's ablation).
VEGETA_M8 = HardwareMenu(
    "VEGETA", (NMPattern(1, 8), NMPattern(2, 8), NMPattern(4, 8)),
    max_terms=1, dynamic_decomposition=False,
)
STC_2_4 = HardwareMenu("STC", (NMPattern(2, 4),), max_terms=1, dynamic_decomposition=False)

ALL_TTC_MENUS = (TTC_STC_M4, TTC_STC_M8, TTC_VEGETA_M4, TTC_VEGETA_M8)


def menu_n4() -> list[TASDConfig]:
    """All single-term N:4 configs (Fig. 14's network-wise N:4 sweep)."""
    return [TASDConfig.single(n, 4) for n in range(1, 5)]


def menu_n8() -> list[TASDConfig]:
    """All single-term N:8 configs."""
    return [TASDConfig.single(n, 8) for n in range(1, 9)]


def menu_n16() -> list[TASDConfig]:
    """All single-term N:16 configs."""
    return [TASDConfig.single(n, 16) for n in range(1, 17)]
