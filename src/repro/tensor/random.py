"""Synthetic sparse tensor generators (Appendix A's experimental inputs).

The paper's synthetic study uses 128x128 / 256x256 matrices with controlled
density and either uniform(0, 1) or normal(0, 1/3) value distributions; the
generators here reproduce those and add per-layer sparsity-profile sampling
used by the workload suite.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "sparse_uniform",
    "sparse_normal",
    "sparse_matrix",
    "random_nm_legal",
    "activation_like",
]


def _rng(seed_or_rng: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    return np.random.default_rng(seed_or_rng)


def _apply_density(values: np.ndarray, density: float, rng: np.random.Generator) -> np.ndarray:
    if not 0.0 <= density <= 1.0:
        raise ValueError(f"density must be in [0, 1], got {density}")
    mask = rng.random(values.shape) < density
    return np.where(mask, values, 0.0)


def sparse_uniform(
    shape: tuple[int, ...],
    density: float,
    low: float = 0.0,
    high: float = 1.0,
    seed: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """Unstructured sparse tensor with Uniform(low, high) non-zero values.

    Note: with ``low == 0`` a vanishing fraction of sampled non-zeros can be
    exactly 0.0; values are nudged away from zero so density is exact.
    """
    rng = _rng(seed)
    values = rng.uniform(low, high, size=shape)
    if low <= 0.0 <= high:
        values = np.where(values == 0.0, np.nextafter(0.0, 1.0), values)
    return _apply_density(values, density, rng)


def sparse_normal(
    shape: tuple[int, ...],
    density: float,
    mean: float = 0.0,
    std: float = 1.0 / 3.0,
    seed: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """Unstructured sparse tensor with Normal(mean, std) non-zero values."""
    rng = _rng(seed)
    values = rng.normal(mean, std, size=shape)
    values = np.where(values == 0.0, np.nextafter(0.0, 1.0), values)
    return _apply_density(values, density, rng)


def sparse_matrix(
    rows: int,
    cols: int,
    density: float,
    distribution: str = "normal",
    seed: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """Convenience 2-D generator matching Appendix A's setup."""
    if distribution == "normal":
        return sparse_normal((rows, cols), density, seed=seed)
    if distribution == "uniform":
        return sparse_uniform((rows, cols), density, seed=seed)
    raise ValueError(f"unknown distribution {distribution!r}")


def random_nm_legal(
    rows: int,
    cols: int,
    n: int,
    m: int,
    seed: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """A random matrix that is exactly N:M legal with exactly N nnz per block.

    Used to test the lossless path: structured accelerators must run these
    without dropping anything.
    """
    if cols % m != 0:
        raise ValueError(f"cols={cols} not divisible by m={m}")
    rng = _rng(seed)
    n_blocks = cols // m
    out = np.zeros((rows, n_blocks, m))
    vals = rng.normal(size=(rows, n_blocks, n))
    vals = np.where(vals == 0.0, 1e-6, vals)
    # Choose n distinct positions per block via argsort of random keys.
    keys = rng.random((rows, n_blocks, m))
    pos = np.argsort(keys, axis=-1)[..., :n]
    np.put_along_axis(out, pos, vals, axis=-1)
    return out.reshape(rows, cols)


def activation_like(
    shape: tuple[int, ...],
    kind: str = "relu",
    seed: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """Tensors distributed like post-activation feature maps.

    ``relu`` halves a standard normal (≈50 % zeros, Section 2.2's intrinsic
    activation sparsity); ``gelu`` produces the dense-but-skewed magnitude
    distribution that motivates pseudo-density (Section 4.3).
    """
    rng = _rng(seed)
    pre = rng.normal(size=shape)
    if kind == "relu":
        return np.maximum(pre, 0.0)
    if kind == "gelu":
        from scipy.stats import norm

        return pre * norm.cdf(pre)
    if kind == "dense":
        return pre
    raise ValueError(f"unknown activation kind {kind!r}")
