"""Sparse tensor substrate: generators, statistics, block utilities."""

from .blocks import blocks_along_axis, crop_to_shape, pad_to_multiple
from .random import (
    activation_like,
    random_nm_legal,
    sparse_matrix,
    sparse_normal,
    sparse_uniform,
)
from .stats import TensorStats, collect_stats, per_block_nnz_histogram, pseudo_density

__all__ = [
    "pad_to_multiple",
    "crop_to_shape",
    "blocks_along_axis",
    "sparse_uniform",
    "sparse_normal",
    "sparse_matrix",
    "random_nm_legal",
    "activation_like",
    "TensorStats",
    "collect_stats",
    "pseudo_density",
    "per_block_nnz_histogram",
]
