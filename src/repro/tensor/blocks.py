"""Block-shape utilities shared by decomposition and hardware models."""

from __future__ import annotations

import numpy as np

__all__ = ["pad_to_multiple", "crop_to_shape", "blocks_along_axis"]


def pad_to_multiple(x: np.ndarray, multiple: int, axis: int = -1) -> np.ndarray:
    """Zero-pad ``axis`` of ``x`` up to the next multiple of ``multiple``.

    Padding with zeros never changes a pattern view (zeros are never kept),
    so this is the safe way to decompose tensors whose reduction dimension
    is not block-aligned.
    """
    x = np.asarray(x)
    if multiple <= 0:
        raise ValueError("multiple must be positive")
    axis = axis % x.ndim
    length = x.shape[axis]
    pad = (-length) % multiple
    if pad == 0:
        return x
    widths = [(0, 0)] * x.ndim
    widths[axis] = (0, pad)
    return np.pad(x, widths)


def crop_to_shape(x: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Crop ``x`` down to ``shape`` (inverse of trailing zero padding)."""
    x = np.asarray(x)
    if len(shape) != x.ndim:
        raise ValueError(f"rank mismatch: {x.shape} vs {shape}")
    slices = tuple(slice(0, s) for s in shape)
    return x[slices]


def blocks_along_axis(length: int, m: int) -> int:
    """Number of ``m``-blocks covering ``length`` elements (ceil division)."""
    if m <= 0:
        raise ValueError("block size must be positive")
    return -(-length // m)
