"""Sparsity and magnitude statistics used by TASDER's selection heuristics."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "TensorStats",
    "collect_stats",
    "pseudo_density",
    "per_block_nnz_histogram",
]


@dataclass(frozen=True)
class TensorStats:
    """Summary statistics of one tensor (weights or a batch of activations)."""

    size: int
    nnz: int
    sparsity: float
    mean_abs: float
    max_abs: float
    magnitude_sum: float
    pseudo_density_99: float

    @property
    def density(self) -> float:
        return 1.0 - self.sparsity


def collect_stats(x: np.ndarray, pseudo_density_target: float = 0.99) -> TensorStats:
    """Compute :class:`TensorStats` for ``x`` in one vectorised pass."""
    x = np.asarray(x)
    mag = np.abs(x)
    nnz = int(np.count_nonzero(x))
    total = float(mag.sum())
    return TensorStats(
        size=x.size,
        nnz=nnz,
        sparsity=1.0 - nnz / x.size if x.size else 0.0,
        mean_abs=float(mag.mean()) if x.size else 0.0,
        max_abs=float(mag.max()) if x.size else 0.0,
        magnitude_sum=total,
        pseudo_density_99=pseudo_density(x, pseudo_density_target),
    )


def pseudo_density(x: np.ndarray, target: float = 0.99) -> float:
    """Smallest element fraction whose magnitudes sum to ``target`` of the total.

    Section 4.3's heuristic for GELU/Swish networks: activations are dense
    but magnitude-skewed, so the fraction of elements needed to preserve 99 %
    of total magnitude plays the role of density.  A tensor of identical
    magnitudes has pseudo-density ≈ ``target``; a heavily skewed tensor has a
    much smaller one.
    """
    if not 0.0 < target <= 1.0:
        raise ValueError(f"target must be in (0, 1], got {target}")
    x = np.asarray(x)
    if x.size == 0:
        return 0.0
    mag = np.sort(np.abs(x), axis=None)[::-1]
    total = float(mag.sum())
    if total == 0.0:
        return 0.0
    cumulative = np.cumsum(mag)
    # First index where the running sum reaches the target share.
    k = int(np.searchsorted(cumulative, target * total, side="left")) + 1
    return min(1.0, k / x.size)


def per_block_nnz_histogram(x: np.ndarray, m: int, axis: int = -1) -> np.ndarray:
    """Histogram of non-zeros per ``m``-block; index k counts blocks with k nnz.

    Useful for validating the binomial model in :mod:`repro.core.analysis`.
    """
    from repro.core.patterns import block_view

    blocks = block_view(np.asarray(x), m, axis=axis)
    nnz = np.count_nonzero(blocks, axis=-1).ravel()
    return np.bincount(nnz, minlength=m + 1)
