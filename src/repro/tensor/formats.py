"""Unstructured sparse storage formats and their size models.

The DSTC baseline's traffic model (compressed operands ≈ 1.5x their kept
values) comes from real format overheads; this module implements the
formats so the constant is derived, not asserted:

* CSR — row pointers + column indices + values;
* bitmap — one presence bit per element + packed values;
* COO — (row, col, value) triples.

Each format round-trips exactly and reports its size in bits for a given
value width, so tests can check which format wins at which density — and
that the 1.5x factor is a fair summary for the densities the workloads use.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "CSRMatrix",
    "csr_encode",
    "csr_decode",
    "BitmapMatrix",
    "bitmap_encode",
    "bitmap_decode",
    "COOMatrix",
    "coo_encode",
    "coo_decode",
    "format_bits",
    "best_format",
]


@dataclass(frozen=True)
class CSRMatrix:
    shape: tuple[int, int]
    indptr: np.ndarray  # (rows + 1,)
    indices: np.ndarray  # (nnz,)
    values: np.ndarray  # (nnz,)

    def bits(self, value_bits: int = 16) -> float:
        rows, cols = self.shape
        index_bits = max(1, int(np.ceil(np.log2(max(2, cols)))))
        pointer_bits = max(1, int(np.ceil(np.log2(max(2, self.values.size + 1)))))
        return (
            self.values.size * (value_bits + index_bits)
            + (rows + 1) * pointer_bits
        )


def csr_encode(x: np.ndarray) -> CSRMatrix:
    x = np.asarray(x)
    rows, _ = x.shape
    indptr = np.zeros(rows + 1, dtype=np.int64)
    indices_list = []
    values_list = []
    for r in range(rows):
        nz = np.flatnonzero(x[r])
        indptr[r + 1] = indptr[r] + nz.size
        indices_list.append(nz)
        values_list.append(x[r, nz])
    return CSRMatrix(
        shape=x.shape,
        indptr=indptr,
        indices=np.concatenate(indices_list) if indices_list else np.array([], dtype=np.int64),
        values=np.concatenate(values_list) if values_list else np.array([]),
    )


def csr_decode(m: CSRMatrix) -> np.ndarray:
    out = np.zeros(m.shape)
    for r in range(m.shape[0]):
        lo, hi = m.indptr[r], m.indptr[r + 1]
        out[r, m.indices[lo:hi]] = m.values[lo:hi]
    return out


@dataclass(frozen=True)
class BitmapMatrix:
    shape: tuple[int, int]
    mask: np.ndarray  # boolean presence map
    values: np.ndarray  # packed non-zeros, row-major

    def bits(self, value_bits: int = 16) -> float:
        return self.mask.size * 1 + self.values.size * value_bits


def bitmap_encode(x: np.ndarray) -> BitmapMatrix:
    x = np.asarray(x)
    mask = x != 0
    return BitmapMatrix(shape=x.shape, mask=mask, values=x[mask])


def bitmap_decode(m: BitmapMatrix) -> np.ndarray:
    out = np.zeros(m.shape)
    out[m.mask] = m.values
    return out


@dataclass(frozen=True)
class COOMatrix:
    shape: tuple[int, int]
    rows: np.ndarray
    cols: np.ndarray
    values: np.ndarray

    def bits(self, value_bits: int = 16) -> float:
        r_bits = max(1, int(np.ceil(np.log2(max(2, self.shape[0])))))
        c_bits = max(1, int(np.ceil(np.log2(max(2, self.shape[1])))))
        return self.values.size * (value_bits + r_bits + c_bits)


def coo_encode(x: np.ndarray) -> COOMatrix:
    x = np.asarray(x)
    rows, cols = np.nonzero(x)
    return COOMatrix(shape=x.shape, rows=rows, cols=cols, values=x[rows, cols])


def coo_decode(m: COOMatrix) -> np.ndarray:
    out = np.zeros(m.shape)
    out[m.rows, m.cols] = m.values
    return out


def format_bits(x: np.ndarray, value_bits: int = 16) -> dict[str, float]:
    """Storage cost of every format (plus dense) for one matrix, in bits."""
    return {
        "dense": float(x.size * value_bits),
        "csr": csr_encode(x).bits(value_bits),
        "bitmap": bitmap_encode(x).bits(value_bits),
        "coo": coo_encode(x).bits(value_bits),
    }


def best_format(x: np.ndarray, value_bits: int = 16) -> tuple[str, float]:
    """The cheapest format and its size relative to dense storage."""
    sizes = format_bits(x, value_bits)
    dense = sizes.pop("dense")
    name = min(sizes, key=sizes.get)  # type: ignore[arg-type]
    return name, sizes[name] / dense
