"""repro: reproduction of "Enabling Unstructured Sparse Acceleration on
Structured Sparse Accelerators" (TASD / TASDER / TTC, MLSys 2025).

Public API highlights
---------------------
- :mod:`repro.core` — TASD: N:M patterns, decomposition, series, kernels.
- :mod:`repro.tasder` — the TASDER optimizer (TASD-W / TASD-A searches).
- :mod:`repro.nn` — NumPy DNN substrate (models, training, pruning hooks).
- :mod:`repro.hw` — Sparseloop-style analytical accelerator models
  (TC / DSTC / VEGETA / TTC) with the decomposition-aware dataflow.
- :mod:`repro.gpu` — 2:4 semi-structured kernels + Ampere-like perf model
  (the real-system substitute).
- :mod:`repro.workloads` — full-size layer shapes and evaluation workloads.
- :mod:`repro.experiments` — one driver per paper table/figure.
- :mod:`repro.runtime` — inference runtime: compiled execution plans,
  compressed-operand cache, batched executor, micro-batching serving engine.
"""

from .core import (
    DENSE_CONFIG,
    Decomposition,
    NMPattern,
    TASDConfig,
    compose_menu,
    decompose,
    pattern_view,
    tasd_matmul,
)

__version__ = "1.0.0"

__all__ = [
    "NMPattern",
    "TASDConfig",
    "DENSE_CONFIG",
    "Decomposition",
    "decompose",
    "pattern_view",
    "compose_menu",
    "tasd_matmul",
    "__version__",
]
