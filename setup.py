"""Legacy setup shim: the offline environment lacks the ``wheel`` package,
so ``pip install -e .`` must use the setup.py-based editable path."""

from setuptools import setup

setup()
