"""Quickstart: TASD in five minutes (the Fig. 4 walk-through).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import NMPattern, TASDConfig, compose_menu, decompose, tasd_matmul
from repro.core import menu_table, report

# ---------------------------------------------------------------------------
# 1. The paper's Fig. 4 matrix: 2x8, 37.5 % sparse, element sum 25.
# ---------------------------------------------------------------------------
A = np.array(
    [
        [1, 3, 0, 0, 2, 4, 4, 1],
        [2, 0, 0, 0, 0, 3, 1, 4],
    ],
    dtype=float,
)
print("original matrix A:\n", A)

# One 2:4 term: keeps the 2 largest magnitudes of every 4-block.
one_term = decompose(A, [NMPattern(2, 4)])
print("\nA1 (2:4 view):\n", one_term.terms[0].tensor)
print("R1 (residual):\n", one_term.residual)
print(report(one_term))

# Add a 2:8 term extracted from the residual: now lossless for this matrix.
two_terms = decompose(A, [NMPattern(2, 4), NMPattern(2, 8)])
print("\nwith a second 2:8 term:", report(two_terms))
assert two_terms.is_lossless

# ---------------------------------------------------------------------------
# 2. The distributive property: A @ B as a sum of structured sparse GEMMs.
# ---------------------------------------------------------------------------
B = np.random.default_rng(0).normal(size=(8, 4))
config = TASDConfig.parse("2:4+2:8")
C_tasd = tasd_matmul(A, B, config)
print("\nmax |A@B - TASD(A)@B| =", np.abs(A @ B - C_tasd).max())

# ---------------------------------------------------------------------------
# 3. Table 2: what a TTC-VEGETA-M8 can execute with <= 2 TASD terms.
# ---------------------------------------------------------------------------
menu = compose_menu([NMPattern(1, 8), NMPattern(2, 8), NMPattern(4, 8)], max_terms=2)
print("\nTable 2 — effective patterns on TTC-VEGETA-M8:")
for pattern, series in menu_table(menu, m=8):
    print(f"  {pattern:>4s} -> {series}")
