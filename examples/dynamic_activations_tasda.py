"""TASD-A end to end: dynamic decomposition of activations, GELU included.

Shows both activation regimes of Section 4.3 on trained models:
- a ReLU CNN whose activations carry real zeros (sparsity-based selection);
- a GELU transformer whose activations are dense but magnitude-skewed
  (pseudo-density-based selection).

Run:  python examples/dynamic_activations_tasda.py
"""

import numpy as np

from repro.nn import Adam, synthetic_images, synthetic_tokens, train_classifier
from repro.nn.models import bert_mini, resnet18
from repro.tasder import TTC_VEGETA_M8, Tasder, calibrate

# ---------------------------------------------------------------------------
# ReLU CNN: real activation sparsity.
# ---------------------------------------------------------------------------
images = synthetic_images(n_train=384, n_eval=192, size=16, noise=0.6, seed=0)
cnn = resnet18(base_width=8, rng=np.random.default_rng(0))
train_classifier(cnn, images.x_train, images.y_train, epochs=4,
                 optimizer=Adam(cnn, lr=2e-3), seed=0)

profiles = calibrate(cnn, images.x_calib)
print("ReLU CNN — calibrated input-activation sparsity (first 5 layers):")
for name, profile in list(profiles)[:5]:
    print(f"  {name}: sparsity={profile.mean_sparsity:.2f} "
          f"(p99 {profile.p99_sparsity:.2f})")

result = Tasder(cnn, images, TTC_VEGETA_M8, alpha=0.1).optimize_activations()
print("TASD-A on the CNN:", result, "\n")

# ---------------------------------------------------------------------------
# GELU transformer: no zeros, pseudo-density takes over.
# ---------------------------------------------------------------------------
tokens = synthetic_tokens(n_train=384, n_eval=192, seed=0)
bert = bert_mini(rng=np.random.default_rng(0))
train_classifier(bert, tokens.x_train, tokens.y_train, epochs=5,
                 optimizer=Adam(bert, lr=2e-3), seed=0)

profiles = calibrate(bert, tokens.x_calib)
print("GELU BERT — zero sparsity vs pseudo-density (first 4 layers):")
for name, profile in list(profiles)[:4]:
    print(f"  {name}: zeros={profile.mean_sparsity:.3f} "
          f"pseudo-density={profile.mean_pseudo_density:.2f}")

result = Tasder(bert, tokens, TTC_VEGETA_M8, alpha=0.2).optimize_activations()
print("TASD-A on BERT:", result)
