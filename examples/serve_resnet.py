"""Compile once, serve many: the TASD inference runtime quickstart.

A sparse ResNet-18's weights are decomposed and compressed into structured
N:M operands exactly once, at plan-build time; every request after that
runs only the structured sparse GEMMs.  Compilation also *autotunes* the
kernel backend per layer (micro-benchmarking the registry of structured
GEMM implementations), and serving runs replica-parallel: each engine
worker executes on its own model replica sharing the one compiled plan.

The compiled plan also *persists*: it is saved to a digest-keyed ``.npz``
artifact and reloaded as a warm restart would — no re-decomposition, no
re-tuning, identical backend choices — which is how a production server
skips the compile cost after a process restart.  And it *shares*: the
final section serves the same plan through a pool of worker processes
attached to it via shared memory, scaling past the GIL with bit-identical
outputs.

The runtime is also *observable while it serves* (section 6) and
*fault-tolerant* (section 7 kills a live worker and watches the
supervisor respawn it with zero client-visible failures): the engine
records latency / queue-wait / batch-size histograms and per-request span
traces as it runs, and ``engine.serve_metrics(port=...)`` exposes them
over HTTP — Prometheus ``/metrics``, ``/metrics.json``, ``/healthz``, and
a human-readable ``/statusz`` — so you can watch a live server instead of
waiting for a post-mortem ``report()``.

It is *operable with zero downtime* (section 8): a hot ``swap_plan``
rolls a new compiled artifact onto the live fleet behind a canary batch
(a corrupt candidate is rejected typed-ly with the old plan still
serving), ``scale_to`` resizes the worker fleet in place, and ``drain``
finishes every admitted request before stopping — the CLI maps SIGHUP
and SIGTERM to the same operations.

And when one request's latency matters more than fleet throughput,
section 9 flips the parallelism *inside* the forward: each large layer's
gather rows are partitioned into equal-**nnz** shards (not equal rows —
the TASD decomposition's per-row population is skewed, so row counts
lie about work) and one request's GEMMs scatter across all the process
workers at once, gathered bit-identically — ``submit(x, shard=True)``,
or ``serve --shard-layers`` from the CLI.

Run:  python examples/serve_resnet.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.core import TASDConfig
from repro.nn.models.resnet import resnet18
from repro.pruning.magnitude import global_magnitude_prune
from repro.pruning.targets import gemm_layers
from repro.runtime import (
    OperandCache,
    ReplicaExecutor,
    ServingEngine,
    compile_plan,
    load_plan,
    make_pool,
)
from repro.tasder.transform import TASDTransform

# ---------------------------------------------------------------------------
# 1. A sparse model and its TASD transform (here: uniform 2:4 weights; in
#    production this comes from Tasder.optimize_weights(...).transform).
# ---------------------------------------------------------------------------
model = resnet18(num_classes=10, base_width=16)
global_magnitude_prune(model, sparsity=0.6)
transform = TASDTransform(
    weight_configs={name: TASDConfig.parse("2:4") for name, _ in gemm_layers(model)}
)

# ---------------------------------------------------------------------------
# 2. Compile: weights decompose + compress exactly once, into the cache,
#    and the autotuner picks the fastest GEMM kernel backend per layer
#    (visible in the summary).  Tasder.compile(result, autotune=True) does
#    the same from a search result.
# ---------------------------------------------------------------------------
cache = OperandCache(capacity=64)
plan = compile_plan(model, transform, cache=cache, autotune=True)
print(plan.summary(), "\n")

# ---------------------------------------------------------------------------
# 3. Persist + warm-restart: save the compiled artifact (operands, gather
#    tables, autotuned backend choices, keyed by weight digests) and reload
#    it the way a restarted server would — milliseconds instead of a full
#    recompile + re-tune, with the per-layer kernel choices preserved.
# ---------------------------------------------------------------------------
fresh_choices = plan.backend_choices()
with tempfile.TemporaryDirectory() as tmpdir:
    artifact = Path(tmpdir) / "resnet18_plan.npz"
    plan.save(artifact)
    plan = load_plan(artifact, model)
    print(f"plan reloaded from {artifact} in {plan.build_time * 1e3:.1f} ms\n")
assert plan.backend_choices() == fresh_choices  # tuning survived the restart

# ---------------------------------------------------------------------------
# 4. Serve replica-parallel: four engine workers, each with its own model
#    replica (weights aliased, operands shared) — no executor lock.
# ---------------------------------------------------------------------------
rng = np.random.default_rng(0)
with ReplicaExecutor(model, plan, replicas=4) as executor:
    with ServingEngine(executor, max_batch=4, batch_window=0.002, workers=4) as engine:
        futures = [engine.submit(rng.normal(size=(1, 3, 8, 8))) for _ in range(16)]
        outputs = [f.result(timeout=120.0) for f in futures]
    print(engine.report().summary(), "\n")
    print(executor.stats().table())

assert all(out.shape == (1, 10) for out in outputs)

# ---------------------------------------------------------------------------
# 5. Serve past the GIL: a *process* pool.  The compiled plan (the same
#    .npz-artifact contents — compressed terms, gather tables, dense
#    weights) is exported once into a shared-memory segment; each worker
#    process attaches zero-copy, installs the plan on its own model copy,
#    and serves with no GIL in common.  Outputs are bit-identical to the
#    thread pool; per-worker counters merge into one stats() view.  This
#    is the compile-once / serve-everywhere step a production deployment
#    takes after `compile --autotune --save-plan plan.npz`:
#
#        python -m repro.cli serve --plan plan.npz --pool process --workers 4
#
#    Guarded so spawn-start platforms (which re-import this script inside
#    each worker) don't recursively spawn pools from the re-import.
# ---------------------------------------------------------------------------
if __name__ == "__main__":
    inputs = [rng.normal(size=(1, 3, 8, 8)) for _ in range(16)]
    with make_pool("thread", model, plan, workers=2) as pool:
        thread_outputs = pool.run_many(inputs)
    with make_pool("process", model, plan, workers=2) as pool:
        process_outputs = pool.run_many(inputs)
        print("\nprocess pool:", pool.stats().table().splitlines()[-1])
    for a, b in zip(thread_outputs, process_outputs):
        np.testing.assert_array_equal(b, a)  # bit-identical across substrates
    print("process-pool outputs bit-identical to thread-pool outputs")

    # -----------------------------------------------------------------------
    # 6. Watch it live: serve with the metrics endpoint up and scrape your
    #    own /metrics mid-flight.  Everything the runtime counts is there —
    #    request-latency histograms (the same fixed log-spaced buckets on
    #    every worker, so process workers' histograms merged in exactly),
    #    per-layer GEMM latency by kernel backend, cache hit/miss counters,
    #    and a liveness gauge per pool worker.  Point a real Prometheus at
    #    the same URL, or open /statusz in a browser for the recent-request
    #    trace table.  (`python -m repro.cli serve --metrics-port 9100` is
    #    the one-line version of this section.)
    # -----------------------------------------------------------------------
    import json
    import urllib.request

    with make_pool("process", model, plan, workers=2) as pool:
        with ServingEngine(pool, max_batch=4, batch_window=0.002, workers=2) as engine:
            with engine.serve_metrics(port=0) as server:  # port=0: ephemeral
                print(f"\nmetrics live at {server.url}/metrics")
                futures = [engine.submit(x) for x in inputs]
                for f in futures:
                    f.result(timeout=120.0)
                health = json.load(urllib.request.urlopen(server.url + "/healthz"))
                scrape = urllib.request.urlopen(server.url + "/metrics").read().decode()
    print(f"healthz: {health}")
    print("scraped mid-flight:")
    for line in scrape.splitlines():
        if line.startswith(("tasd_serve_requests_total", "tasd_worker_alive")) or (
            line.startswith("tasd_serve_request_latency_seconds_bucket") and "+Inf" in line
        ):
            print(f"  {line}")
    report = engine.report()
    print(f"report agrees: {report.count} requests, "
          f"p50 {report.p50 * 1e3:.1f} ms / p99 {report.p99 * 1e3:.1f} ms")

    # -----------------------------------------------------------------------
    # 7. Surviving crashes: kill a worker live and watch nothing break.
    #    The process pool supervises its workers — a SIGKILLed worker is
    #    detected (pipe error mid-request, health ping when idle), retired,
    #    and respawned from the already-shared plan segment; the engine
    #    retries the batch that was in flight, so the client just sees its
    #    future resolve.  `worker_respawns` ticks in /metrics, and
    #    /healthz only leaves "ok" if the pool actually collapses
    #    ("degraded": still serving, via respawn-in-progress or the
    #    in-process fallback; "dead": 503).  Try it against a real server:
    #
    #        python -m repro.cli serve --pool process --workers 4 \
    #            --metrics-port 9100 --requests 500 &
    #        kill -9 <a worker pid>; curl -s localhost:9100/metrics | \
    #            grep tasd_worker_respawns_total
    # -----------------------------------------------------------------------
    import os
    import signal
    import time

    from repro.runtime import ProcessWorkerPool

    pool = ProcessWorkerPool(model, plan, workers=2, respawn_backoff=0.01,
                             health_interval=0.05)
    with pool:
        with ServingEngine(pool, max_batch=4, workers=2) as engine:
            baseline = engine.infer(inputs[0], timeout=120.0)
            victim = pool.worker_pids()[0]
            os.kill(victim, signal.SIGKILL)  # the OOM killer, simulated
            survivor = engine.infer(inputs[0], timeout=120.0)  # retried if hit
            np.testing.assert_array_equal(survivor, baseline)
            deadline = time.perf_counter() + 30.0
            # Wait for the full cycle: corpse retired AND replacement up.
            while time.perf_counter() < deadline and not (
                pool.respawns >= 1 and len(pool.worker_pids()) == 2
            ):
                time.sleep(0.05)
            snap = engine.metrics_snapshot()
            respawns = snap["tasd_worker_respawns_total"]["series"][0]["value"]
            print(f"\nkilled worker pid {victim}: output unchanged, pool back to "
                  f"{len(pool.worker_pids())}/2 workers, "
                  f"worker_respawns_total {int(respawns)}")

    # -----------------------------------------------------------------------
    # 8. Rolling upgrades and drain: change the plan, the fleet size, or
    #    shut down — all without dropping a request.
    #
    #    `engine.swap_plan(plan_or_path)` rolls a new compiled artifact
    #    onto the live workers one at a time: a *canary* batch validates
    #    the candidate on the first swapped worker (outputs must allclose
    #    the live plan's), and only then does the rest of the fleet
    #    follow; the old shared-memory segment is unlinked after the last
    #    worker detaches.  A candidate that computes the wrong function —
    #    wrong weights (fingerprint gate), corrupt arithmetic, a crash —
    #    raises a typed `SwapRejected` and the old plan never stops
    #    serving.  `engine.scale_to(n)` resizes the worker fleet in place
    #    (an `Autoscaler` can drive it from queue depth + utilization
    #    with hysteresis and cooldown), and `engine.drain()` closes the
    #    admission door (`/healthz` reports "draining", late submits get
    #    `QueueFull`), finishes everything already accepted, then stops.
    #    Against a real server the CLI wires the same operations to
    #    signals — SIGHUP hot-reloads `--plan`, SIGTERM drains and exits
    #    0:
    #
    #        python -m repro.cli serve --plan plan.npz --pool process \
    #            --workers 4 --requests 500 &
    #        kill -HUP %1   # hot-swap to the (updated) plan.npz artifact
    #        kill -TERM %1  # drain: finish admitted work, exit 0
    # -----------------------------------------------------------------------
    from repro.runtime import SwapRejected, skewed_plan

    # The candidate: a freshly re-compiled artifact carrying the live
    # plan's tuned kernel choices — same function, same kernels, so the
    # upgrade must be bit-exact.  (A candidate with *different* backend
    # choices still canaries clean, just at allclose rather than ulp.)
    candidate = compile_plan(model, transform)
    for name, choice in plan.backend_choices().items():
        candidate.layers[name].backend = choice
    pool = ProcessWorkerPool(model, plan, workers=2, respawn_backoff=0.01,
                             health_interval=0.05)
    with pool:
        engine = ServingEngine(pool, max_batch=4, workers=2)
        engine.start()
        before = engine.infer(inputs[0], timeout=120.0)
        info = engine.swap_plan(candidate, canary=inputs[0])
        after = engine.infer(inputs[0], timeout=120.0)
        np.testing.assert_array_equal(after, before)  # upgrade invisible
        print(f"\nhot swap: {info['swapped_workers']} workers rolled, "
              "served outputs bit-identical across the upgrade")

        try:  # a corrupt artifact dies at the canary, serving never blinks
            engine.swap_plan(skewed_plan(candidate), canary=inputs[0])
        except SwapRejected as exc:
            print(f"corrupt candidate rejected: {exc.reason.split(';')[0]}")

        engine.scale_to(3)  # spawned from the already-shared segment
        print(f"scaled to {len(pool.worker_pids())} workers in place")

        futures = [engine.submit(x) for x in inputs]
        engine.drain(timeout=60.0)  # door closed, admitted work finished
        assert all(f.done() for f in futures) and engine.queue_depth == 0
        print("drained: every admitted request answered, queue empty")

    # -----------------------------------------------------------------------
    # 9. Latency mode: shard one forward across the workers.  Everything
    #    above parallelizes *across* requests — one forward still runs on
    #    one worker, so a single big layer bounds single-request latency.
    #    `engine.enable_sharding()` micro-benchmarks each compiled layer
    #    (fan-out overhead measured against the real pipes, not assumed)
    #    and picks a per-layer shard count K; a `submit(x, shard=True)`
    #    request then runs as a *scatter/gather*: each chosen layer's
    #    gather rows split into K equal-nnz shards (greedy prefix split
    #    over the per-row nnz profile — equal budgets of actual work, not
    #    equal row counts), the shards fan out over the already-shared shm
    #    segment as zero-copy row slices, and the partials concatenate in
    #    the parent bit-identically.  A worker dying mid-scatter just
    #    requeues its shards onto the survivors (section 7's machinery).
    #    Telemetry rides along: `tasd_shard_imbalance_ratio` per layer
    #    (max/mean shard nnz — 1.0 is perfect balance), a per-shard
    #    latency histogram, and `tasd_sharded_forwards_total`.  The CLI
    #    spelling:
    #
    #        python -m repro.cli serve --pool process --workers 4 \
    #            --requests 100 --shard-layers
    # -----------------------------------------------------------------------
    pool = ProcessWorkerPool(model, plan, workers=2, respawn_backoff=0.01,
                             health_interval=0.05)
    with pool:
        with ServingEngine(pool, max_batch=4, workers=2) as engine:
            decisions = engine.enable_sharding()  # measured, per layer
            chosen = {n: d.spec.num_shards for n, d in decisions.items()
                      if d.spec is not None}
            whole = engine.submit(inputs[0]).result(timeout=120.0)
            sharded = engine.submit(inputs[0], shard=True).result(timeout=120.0)
            np.testing.assert_array_equal(sharded, whole)  # gather is exact
            snap = engine.metrics_snapshot()
            gauges = snap.get("tasd_shard_imbalance_ratio", {}).get("series", [])
            if chosen:
                worst = max(s["value"] for s in gauges)
                detail = (f"{len(chosen)} layers sharded (worst nnz imbalance "
                          f"{worst:.3f}x)")
            else:  # small layers + fast cores: the measurements said no
                detail = "no layer beat its unsharded GEMM here, all stay whole"
            print(f"\nlatency mode: {detail}; sharded forward bit-identical "
                  f"either way")

