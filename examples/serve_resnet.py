"""Compile once, serve many: the TASD inference runtime quickstart.

A sparse ResNet-18's weights are decomposed and compressed into structured
N:M operands exactly once, at plan-build time; every request after that
runs only the structured sparse GEMMs.  The serving engine coalesces
concurrent requests into micro-batches and reports per-request latency.

Run:  python examples/serve_resnet.py
"""

import numpy as np

from repro.core import TASDConfig
from repro.nn.models.resnet import resnet18
from repro.pruning.magnitude import global_magnitude_prune
from repro.pruning.targets import gemm_layers
from repro.runtime import OperandCache, PlanExecutor, ServingEngine, compile_plan
from repro.tasder.transform import TASDTransform

# ---------------------------------------------------------------------------
# 1. A sparse model and its TASD transform (here: uniform 2:4 weights; in
#    production this comes from Tasder.optimize_weights(...).transform).
# ---------------------------------------------------------------------------
model = resnet18(num_classes=10, base_width=16)
global_magnitude_prune(model, sparsity=0.6)
transform = TASDTransform(
    weight_configs={name: TASDConfig.parse("2:4") for name, _ in gemm_layers(model)}
)

# ---------------------------------------------------------------------------
# 2. Compile: weights decompose + compress exactly once, into the cache.
#    (Tasder.compile(result) does the same from a search result.)
# ---------------------------------------------------------------------------
cache = OperandCache(capacity=64)
plan = compile_plan(model, transform, cache=cache)
print(plan.summary(), "\n")

# ---------------------------------------------------------------------------
# 3. Serve: submit concurrent requests; the engine micro-batches them.
# ---------------------------------------------------------------------------
rng = np.random.default_rng(0)
with PlanExecutor(model, plan) as executor:
    with ServingEngine(executor, max_batch=4, batch_window=0.002) as engine:
        futures = [engine.submit(rng.normal(size=(1, 3, 8, 8))) for _ in range(16)]
        outputs = [f.result(timeout=120.0) for f in futures]
    print(engine.report().summary(), "\n")
    print(executor.stats().table())

assert all(out.shape == (1, 10) for out in outputs)
