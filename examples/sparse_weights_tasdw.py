"""TASD-W end to end: accelerate an unstructured-sparse model, no fine-tuning.

Trains a small ResNet-18 on a synthetic task, magnitude-prunes it to 90 %
unstructured sparsity (with fine-tuning, as SparseZoo models are produced),
then runs TASDER's greedy TASD-W search against the TTC-VEGETA-M8 pattern
menu — reporting per-layer series, MAC savings, and the retained accuracy.

Run:  python examples/sparse_weights_tasdw.py
"""

import numpy as np

from repro.nn import Adam, evaluate_accuracy, synthetic_images, train_classifier
from repro.nn.models import resnet18
from repro.pruning import prune_and_finetune, sparsity_report
from repro.tasder import TTC_VEGETA_M8, Tasder

# 1. Train a dense model (stand-in for a pretrained checkpoint).
dataset = synthetic_images(n_train=384, n_eval=192, size=16, noise=0.6, seed=0)
model = resnet18(base_width=8, rng=np.random.default_rng(0))
train_classifier(model, dataset.x_train, dataset.y_train, epochs=4,
                 optimizer=Adam(model, lr=2e-3), seed=0)
print("dense accuracy:", evaluate_accuracy(model, dataset.x_eval, dataset.y_eval))

# 2. Unstructured magnitude pruning + fine-tune (the model developer's side).
prune_and_finetune(model, dataset.x_train, dataset.y_train, sparsity=0.90)
report = sparsity_report(model)
print(f"pruned to {report.overall:.1%} overall weight sparsity")
print("sparse accuracy:", evaluate_accuracy(model, dataset.x_eval, dataset.y_eval))

# 3. TASDER bridges the unstructured model to structured hardware.
tasder = Tasder(model, dataset, TTC_VEGETA_M8)
result = tasder.optimize_weights(method="greedy", eval_every=6)
print("\nTASD-W result:", result)
print("\nper-layer TASD series:")
print(result.transform.summary())
