"""Evaluate the Table 3 accelerator designs on the paper's workloads.

Reproduces the Fig. 12 sweep in miniature and prints the per-design EDP,
latency and energy tables plus one layer-level energy breakdown.

Run:  python examples/accelerator_edp.py
"""

from repro.experiments import fig12_edp, fig15_energy_breakdown, tables

print(tables.table3())
print()
print(tables.table4())
print()

result = fig12_edp.run()
print(result.edp_table())
print()
print(result.latency_energy_table())
print()

print(fig15_energy_breakdown.run().table())
