"""Real-system style TASD-W: 2:4 sparse tensor cores on a modelled GPU.

Mirrors Section 5.5's pipeline: verify the 2:4 kernel semantics against
dense matmul, then measure end-to-end ResNet-34 speed-up as more layers
adopt the 2:4 TASD-W configuration (the Fig. 16 sweep, coarse version).

Run:  python examples/gpu_2to4_speedup.py
"""

import numpy as np

from repro.gpu import (
    build_engine,
    compress_2to4,
    engine_speedup,
    prune_2to4,
    sparse_matmul_2to4,
)
from repro.workloads import resnet_layers

# ---------------------------------------------------------------------------
# 1. Kernel semantics: the compressed 2:4 GEMM is exact.
# ---------------------------------------------------------------------------
rng = np.random.default_rng(0)
w = prune_2to4(rng.normal(size=(128, 256)))
x = rng.normal(size=(256, 64))
compressed = compress_2to4(w)
error = np.abs(sparse_matmul_2to4(compressed, x) - w @ x).max()
print(f"2:4 kernel max error vs dense: {error:.2e}")
print(f"compressed weight footprint: {compressed.compressed_bits / (w.size * 16):.4f} of dense")

# ---------------------------------------------------------------------------
# 2. End-to-end ResNet-34 timing as layers convert to 2:4 (batch 32).
# ---------------------------------------------------------------------------
convs = [l for l in resnet_layers(34) if l.kind == "conv"]
names = [l.name for l in convs]
print(f"\nResNet-34: {len(convs)} conv layers, batch 32")
print(f"{'#sparse layers':>15s} {'speedup':>9s}")
for k in range(0, len(names) + 1, 6):
    speedup = engine_speedup(convs, set(names[:k]), batch=32)
    print(f"{k:15d} {speedup:9.3f}")

plan = build_engine(convs, set(names), batch=32)
print(f"\nall-sparse engine: {plan.total_us:.0f} us, {plan.num_sparse} sparse kernels")
