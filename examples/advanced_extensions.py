"""Advanced features: permutation, generalized patterns, training, mapping.

Tour of the library's extensions beyond the paper's core evaluation (all
flagged as future work or generalisations in the paper's text):

1. channel permutation before decomposition (Section 6.1);
2. TASD with non-N:M structured patterns (Section 3's generality claim);
3. TASD-compressed gradients during training (Section 6.2);
4. mapping search on the analytical accelerator (Section 5.1's mappers).

Run:  python examples/advanced_extensions.py
"""

import numpy as np

from repro.core import NMPattern, TASDConfig, decompose_with_permutation
from repro.core.patterns_ext import BlockPattern, VectorPattern, generalized_decompose
from repro.hw import DenseTC, LayerSpec, search_mapping
from repro.nn import synthetic_images
from repro.nn.models import MLP
from repro.tasder import train_with_tasd_gradients
from repro.tensor.random import sparse_normal

# ---------------------------------------------------------------------------
# 1. Channel permutation: rebalance blocks before taking the 2:4 view.
# ---------------------------------------------------------------------------
w = np.zeros((32, 64))
rng = np.random.default_rng(0)
w[:, :16] = rng.normal(size=(32, 16)) * 10.0  # heavy columns crowd 4 blocks
w[:, 16:] = rng.normal(size=(32, 48)) * 0.1
result = decompose_with_permutation(w, TASDConfig.parse("2:4"))
print(f"permutation gain in kept magnitude: {result.improvement:+.1%}")

# ---------------------------------------------------------------------------
# 2. Mixing pattern families in one TASD series.
# ---------------------------------------------------------------------------
x = sparse_normal((64, 256), density=0.7, seed=1)
dec = generalized_decompose(
    x,
    [
        NMPattern(2, 4),                      # fine-grained first term
        BlockPattern(block=4, keep=1, total=2),  # coarse second term
        VectorPattern(1, 4),                  # vector-wise third term
    ],
)
dropped = np.abs(dec.residual).sum() / np.abs(x).sum()
print(f"mixed-pattern series drops {dropped:.2%} of magnitude over 3 terms")

# ---------------------------------------------------------------------------
# 3. Training with structured-sparse gradients.
# ---------------------------------------------------------------------------
ds = synthetic_images(n_train=128, n_eval=64, size=8, noise=0.4, seed=2)
model = MLP(192, (64,), 10, rng=np.random.default_rng(2))
flat = ds.x_train.reshape(128, -1)
run = train_with_tasd_gradients(model, flat, ds.y_train, TASDConfig.parse("4:8+2:8"),
                                epochs=5, lr=2e-3)
print(f"TASD-gradient training: {run.final_accuracy:.1%} accuracy at "
      f"{run.compute_density:.0%} backward compute, "
      f"mean gradient error {run.mean_gradient_error:.3f}")

# ---------------------------------------------------------------------------
# 4. Mapping search on a Table 4 layer.
# ---------------------------------------------------------------------------
model_hw = DenseTC()
spec = LayerSpec(name="RN50-L1", m=784, k=1152, n=128)
best, candidates = search_mapping(model_hw, spec)
print(f"mapping search: {len(candidates)} legal tilings, best EDP "
      f"{best.edp:.3e} with tiles tm2={best.tiles.tm2} tn2={best.tiles.tn2}")
